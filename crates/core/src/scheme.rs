//! Assembly of the full routing scheme (Theorem 3).
//!
//! A vertex's **table** holds, for every cluster tree containing it, the
//! tree's root, the distance estimate to that root, and its tree-routing
//! table — `Õ(n^{1/k})` entries by Claim 6. A vertex's **label** holds, for
//! every level `i` with a usable pivot, the pivot `p̂_i(v)`, the estimate
//! `d̂(p̂_i(v), v)`, and `v`'s tree-routing label inside the pivot's cluster
//! tree — `O(k)` entries of `O(log n)` words each.
//!
//! Three construction modes share the pipeline and differ in what the
//! experiment measures:
//!
//! * [`Mode::Centralized`] — the Thorup–Zwick reference row: exact clusters
//!   and pivots at every level, per-tree schemes computed centrally, zero
//!   rounds reported.
//! * [`Mode::DistributedLowMemory`] — **the paper**: hopset-powered pivots
//!   and approximate clusters above the virtual level, the Theorem-2 tree
//!   routing per cluster tree (all trees in parallel at `q = 1/√(sn)`),
//!   per-vertex memory `Õ(n^{1/k})`.
//! * [`Mode::DistributedPrior`] — the \[EN16b\]-style row: same clusters, but
//!   the virtual graph is materialized (`Ω̃(√n)` memory at virtual vertices)
//!   and trees use the prior two-level scheme (`O(log n)` tables,
//!   `O(log² n)` labels).

use std::collections::HashMap;

use congest::{bfs, CostLedger, MemoryMeter, Network, WordSized};
use graphs::{Graph, VertexId, Weight, INFINITY};
use hopset::construction::{build_observed as build_hopset_observed, HopsetParams};
use hopset::virtual_graph::default_b;
use hopset::VirtualGraph;
use rand::Rng;
use tree_routing::baseline::{BaselineLabel, BaselineTable};
use tree_routing::distributed as tree_distributed;
use tree_routing::types::{TreeLabel, TreeTable};
use tree_routing::tz;

use crate::clusters::{self, LevelStats};
use crate::hierarchy::Hierarchy;
use crate::pivots::{self, LevelPivots};
use crate::sparse::{SparseBaselineScheme, SparseTree, SparseTreeScheme};

/// Construction mode (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Centralized Thorup–Zwick (the "NA rounds" reference).
    Centralized,
    /// The paper's low-memory distributed construction.
    DistributedLowMemory,
    /// The prior-work distributed construction (\[EN16b\]-style).
    DistributedPrior,
}

/// Parameters of the construction.
#[derive(Clone, Debug)]
pub struct BuildParams {
    /// The stretch/size tradeoff parameter `k ≥ 2`.
    pub k: usize,
    /// Which construction to run.
    pub mode: Mode,
    /// The paper's `ε` (defaults to `max(1/(48k⁴), 10⁻⁶)`).
    pub epsilon: f64,
    /// Hop-budget for hopset Bellman–Ford; `0` → auto (`2·|V'| + 16`,
    /// enough for guaranteed convergence; the *used* β is reported).
    pub beta_budget: usize,
    /// Hierarchy depth of the hopset (see [`HopsetParams`]).
    pub hopset_levels: usize,
    /// Worker threads for the engine-backed phases (the BFS backbone and the
    /// per-cluster tree constructions); `0` means all available cores.
    /// Thread count never changes the build — the engine is deterministic —
    /// only wall-clock time.
    pub threads: usize,
}

impl BuildParams {
    /// Defaults for a given `k`, in the paper's distributed low-memory mode.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "the scheme needs k >= 2");
        let kf = k as f64;
        BuildParams {
            k,
            mode: Mode::DistributedLowMemory,
            epsilon: (1.0 / (48.0 * kf.powi(4))).max(1e-6),
            beta_budget: 0,
            hopset_levels: 2,
            threads: 1,
        }
    }

    /// Override the engine worker-thread count (`0` = all available cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Same parameters, different mode.
    pub fn with_mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Override `ε`.
    pub fn with_epsilon(mut self, eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 0.2, "paper requires 0 < ε < 1/5");
        self.epsilon = eps;
        self
    }
}

/// Which tree-scheme family a table/label entry carries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeTableKind {
    /// Theorem-2 tables (`O(1)` words).
    Ours(TreeTable),
    /// Prior two-level tables (`O(log n)` words).
    Prior(BaselineTable),
}

impl WordSized for TreeTableKind {
    fn words(&self) -> usize {
        match self {
            TreeTableKind::Ours(t) => t.words(),
            TreeTableKind::Prior(t) => t.words(),
        }
    }
}

/// Tree labels, same split.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeLabelKind {
    /// Theorem-2 labels (`O(log n)` words).
    Ours(TreeLabel),
    /// Prior two-level labels (`O(log² n)` words).
    Prior(BaselineLabel),
}

impl WordSized for TreeLabelKind {
    fn words(&self) -> usize {
        match self {
            TreeLabelKind::Ours(l) => l.words(),
            TreeLabelKind::Prior(l) => l.words(),
        }
    }
}

/// One table row: a cluster tree this vertex belongs to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableEntry {
    /// The cluster center / tree root.
    pub root: VertexId,
    /// The root's hierarchy level.
    pub level: usize,
    /// The construction's distance estimate to the root (≥ true distance).
    pub dist: Weight,
    /// The tree-routing table inside this tree.
    pub table: TreeTableKind,
}

impl WordSized for TableEntry {
    fn words(&self) -> usize {
        3 + self.table.words()
    }
}

/// A vertex's routing table: entries sorted by root id.
#[derive(Clone, Debug, Default)]
pub struct RoutingTable {
    /// Rows, sorted by `root`.
    pub entries: Vec<TableEntry>,
}

impl RoutingTable {
    /// The row for tree `root`, if this vertex is in that tree.
    pub fn entry(&self, root: VertexId) -> Option<&TableEntry> {
        self.entries
            .binary_search_by_key(&root, |e| e.root)
            .ok()
            .map(|i| &self.entries[i])
    }
}

impl WordSized for RoutingTable {
    fn words(&self) -> usize {
        self.entries.iter().map(WordSized::words).sum()
    }
}

/// One label row: a level whose pivot tree contains the labeled vertex.
#[derive(Clone, Debug, PartialEq)]
pub struct LabelEntry {
    /// The hierarchy level `i`.
    pub level: usize,
    /// The (approximate) pivot `p̂_i(v)`.
    pub pivot: VertexId,
    /// Estimated distance from the pivot's tree root to `v`.
    pub dist: Weight,
    /// `v`'s tree-routing label inside the pivot's cluster tree.
    pub tree_label: TreeLabelKind,
}

impl WordSized for LabelEntry {
    fn words(&self) -> usize {
        3 + self.tree_label.words()
    }
}

/// A vertex's routing label: entries in increasing level order.
#[derive(Clone, Debug, Default)]
pub struct RoutingLabel {
    /// Rows, ascending by `level`.
    pub entries: Vec<LabelEntry>,
}

impl WordSized for RoutingLabel {
    fn words(&self) -> usize {
        self.entries.iter().map(WordSized::words).sum()
    }
}

/// The assembled scheme.
#[derive(Clone, Debug)]
pub struct RoutingScheme {
    /// The parameter `k`.
    pub k: usize,
    /// The construction mode that produced this scheme.
    pub mode: Mode,
    /// Per-vertex tables.
    pub tables: Vec<RoutingTable>,
    /// Per-vertex labels.
    pub labels: Vec<RoutingLabel>,
    /// Per vertex, per level `i`: the (approximate) pivot `p̂_i(v)` and the
    /// estimate `d̂(v, A_i)` — `O(k)` words each, the extra state the
    /// Thorup–Zwick *distance oracle* ([`crate::oracle`]) queries against.
    pub pivot_info: Vec<Vec<(VertexId, Weight)>>,
}

impl RoutingScheme {
    /// Largest table, in words.
    pub fn max_table_words(&self) -> usize {
        self.tables.iter().map(WordSized::words).max().unwrap_or(0)
    }

    /// Largest label, in words.
    pub fn max_label_words(&self) -> usize {
        self.labels.iter().map(WordSized::words).max().unwrap_or(0)
    }

    /// Mean table size in words.
    pub fn mean_table_words(&self) -> f64 {
        if self.tables.is_empty() {
            return 0.0;
        }
        self.tables.iter().map(WordSized::words).sum::<usize>() as f64 / self.tables.len() as f64
    }

    /// Words of routing state vertex `v` holds once construction scratch is
    /// gone: its table, its label, and its `(pivot, distance)` pairs (two
    /// words each). This is exactly what the assembly phase charges to the
    /// [`MemoryMeter`], so audits can reconcile component-level attribution
    /// against the metered totals word for word.
    pub fn resident_words(&self, v: VertexId) -> usize {
        self.tables[v.index()].words()
            + self.labels[v.index()].words()
            + 2 * self.pivot_info[v.index()].len()
    }
}

/// Everything the construction measured about itself.
#[derive(Clone, Debug)]
pub struct BuildReport {
    /// Total CONGEST rounds charged (0 in centralized mode).
    pub rounds: u64,
    /// Total logical messages.
    pub messages: u64,
    /// Per-vertex memory peaks.
    pub memory: MemoryMeter,
    /// Depth of the BFS broadcast backbone (≤ D).
    pub bfs_depth: usize,
    /// `|V'| = |A_{⌈k/2⌉}|` (0 when no approximate levels were needed).
    pub virtual_count: usize,
    /// Directed hopset records built.
    pub hopset_edges: usize,
    /// Hopset arboricity bound (max out-degree).
    pub hopset_arboricity: usize,
    /// Largest Bellman–Ford iteration count used anywhere (empirical β).
    pub beta_used: usize,
    /// Number of cluster trees (= n).
    pub cluster_count: usize,
    /// Total cluster memberships.
    pub total_membership: usize,
    /// Max memberships of a single vertex — the paper's `s ≤ 4n^{1/k}·ln n`.
    pub max_membership: usize,
    /// Per-level construction statistics.
    pub level_stats: Vec<LevelStats>,
    /// Largest table in words.
    pub max_table_words: usize,
    /// Largest label in words.
    pub max_label_words: usize,
    /// Rounds spent in the tree-routing stage (included in `rounds`).
    pub tree_stage_rounds: u64,
}

impl std::fmt::Display for BuildReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "rounds            : {}", self.rounds)?;
        writeln!(
            f,
            "peak memory       : {} words/vertex",
            self.memory.max_peak()
        )?;
        writeln!(
            f,
            "max table / label : {} / {} words",
            self.max_table_words, self.max_label_words
        )?;
        writeln!(
            f,
            "clusters          : {} ({} memberships, s = {})",
            self.cluster_count, self.total_membership, self.max_membership
        )?;
        writeln!(
            f,
            "hopset            : {} edges, arboricity {}, beta {}",
            self.hopset_edges, self.hopset_arboricity, self.beta_used
        )?;
        write!(
            f,
            "backbone depth    : {} (|V'| = {})",
            self.bfs_depth, self.virtual_count
        )
    }
}

/// The built scheme plus its cluster trees (kept for verification/benches).
#[derive(Clone, Debug)]
pub struct Built {
    /// The routing scheme.
    pub scheme: RoutingScheme,
    /// All cluster trees, in construction order.
    pub trees: Vec<SparseTree>,
    /// The hopset, when the construction needed one (`None` in centralized
    /// mode or when no approximate level existed). Retained so audits can
    /// spot-check hopset records against their realizing `G`-paths.
    pub hopset: Option<hopset::Hopset>,
    /// Construction measurements.
    pub report: BuildReport,
}

/// Build a routing scheme for `g`.
///
/// # Panics
///
/// Panics if `g` is empty. Disconnected graphs are allowed; routing between
/// components fails at the routing phase with `NoCommonTree`.
pub fn build<R: Rng>(g: &Graph, params: &BuildParams, rng: &mut R) -> Built {
    build_observed(g, params, rng, &mut obs::Recorder::disabled())
}

/// [`build`], attributing each pipeline phase to a span on `rec`:
/// `scheme/backbone`, `scheme/hierarchy`, `scheme/hopset` (with the hopset's
/// own per-level spans nested beneath it), `scheme/pivots`,
/// `scheme/clusters`, `scheme/tree-routing`, and `scheme/assembly`. Span
/// counter deltas partition the ledger totals exactly, and each span closes
/// with a per-vertex peak-memory distribution snapshot.
///
/// # Panics
///
/// Panics if `g` is empty (as [`build`]).
pub fn build_observed<R: Rng>(
    g: &Graph,
    params: &BuildParams,
    rng: &mut R,
    rec: &mut obs::Recorder,
) -> Built {
    let n = g.num_vertices();
    assert!(n > 0, "graph must be non-empty");
    let k = params.k;
    let mut ledger = CostLedger::new();
    let mut memory = MemoryMeter::new(n);
    let distributed = params.mode != Mode::Centralized;

    // Backbone.
    let backbone_span = rec.begin("scheme/backbone");
    let network = Network::new(g.clone());
    let d = if distributed {
        let out = bfs::build_bfs_tree_with(&network, VertexId(0), params.threads);
        ledger.charge_rounds_span(out.stats.rounds, rec);
        for v in g.vertices() {
            memory.add(v, 3);
        }
        out.depth
    } else {
        0
    };
    rec.end_with_memory(backbone_span, memory.peaks());

    // Hierarchy (k coins per vertex, zero rounds).
    let hierarchy_span = rec.begin("scheme/hierarchy");
    let hier = Hierarchy::sample(n, k, rng);
    for v in g.vertices() {
        memory.add(v, k);
    }
    let realized = hier.realized_levels();
    let split = k.div_ceil(2).min(realized);
    rec.end_with_memory(hierarchy_span, memory.peaks());

    // Virtual machinery, when any level at or above `split` exists and we
    // are distributed. (Centralized mode computes everything exactly.)
    let needs_virtual = distributed && realized > split;
    let virt =
        needs_virtual.then(|| VirtualGraph::from_set(g, hier.set(split).to_vec(), default_b(n)));
    let mut hopset_edges = 0;
    let mut hopset_arboricity = 0;
    let mut beta_used = 0;
    let hopset_span = rec.begin("scheme/hopset");
    let hs = virt.as_ref().map(|virt| {
        let out = build_hopset_observed(
            g,
            virt,
            HopsetParams {
                levels: params.hopset_levels,
            },
            d as u64,
            &mut ledger,
            &mut memory,
            rng,
            rec,
        );
        hopset_edges = out.stats.edges;
        hopset_arboricity = out.stats.arboricity;
        out.hopset
    });
    if params.mode == Mode::DistributedPrior {
        if let Some(virt) = virt.as_ref() {
            // The prior construction materializes the virtual graph: every
            // virtual vertex stores its E' incident edges — the Ω̃(√n)
            // memory step the paper eliminates.
            let edges = virt.materialize(g);
            ledger.charge_broadcast_span(edges.len() as u64, d as u64, rec);
            for &(u, v, _) in &edges {
                memory.add(u, 2);
                memory.add(v, 2);
            }
        }
    }
    rec.end_with_memory(hopset_span, memory.peaks());
    let beta_budget = if params.beta_budget > 0 {
        params.beta_budget
    } else {
        2 * virt.as_ref().map_or(0, |v| v.virtual_vertices().len()) + 16
    };

    // Pivots per level 1..=realized (level 0 is trivially "self"; level
    // `realized` and beyond is unreachable = A_k). The pivot routines charge
    // the ledger directly, so the phase span syncs the counter delta.
    let pivots_span = rec.begin("scheme/pivots");
    let pivots_entry = ledger.counters();
    let mut pivot_levels: Vec<LevelPivots> = Vec::with_capacity(realized + 1);
    pivot_levels.push(LevelPivots {
        dist: vec![0; n],
        pivot: (0..n as u32).map(|v| Some(VertexId(v))).collect(),
        exact: true,
        beta_used: 0,
    });
    for j in 1..=realized {
        let set = hier.set(j).to_vec();
        let lp = if set.is_empty() {
            LevelPivots::unreachable(n)
        } else if !distributed {
            // Centralized: exact, zero rounds.
            let mut scratch = CostLedger::new();
            pivots::exact_pivots(g, &set, n, &mut scratch, &mut memory)
        } else if j <= split {
            pivots::exact_pivots(
                g,
                &set,
                pivots::exploration_depth(n, j, k),
                &mut ledger,
                &mut memory,
            )
        } else {
            let virt = virt.as_ref().expect("approx levels imply virtual set");
            let hs = hs.as_ref().expect("approx levels imply hopset");
            let lp = pivots::approx_pivots(
                g,
                virt,
                hs,
                &set,
                beta_budget,
                d as u64,
                &mut ledger,
                &mut memory,
            );
            beta_used = beta_used.max(lp.beta_used);
            lp
        };
        for v in g.vertices() {
            memory.add(v, 2); // stores (d̂, pivot) for this level
        }
        pivot_levels.push(lp);
    }
    while pivot_levels.len() <= realized + 1 {
        pivot_levels.push(LevelPivots::unreachable(n));
    }
    rec.charge(&ledger.counters().delta_since(&pivots_entry));
    rec.end_with_memory(pivots_span, memory.peaks());

    // Clusters per level.
    let clusters_span = rec.begin("scheme/clusters");
    let clusters_entry = ledger.counters();
    let mut trees: Vec<SparseTree> = Vec::new();
    let mut level_stats: Vec<LevelStats> = Vec::new();
    for i in 0..realized {
        let roots: Vec<VertexId> = hier.exactly(i).collect();
        if roots.is_empty() {
            level_stats.push(LevelStats::default());
            continue;
        }
        let next = &pivot_levels[i + 1];
        let approx = match (virt.as_ref(), hs.as_ref()) {
            (Some(virt), Some(hs)) if distributed && i >= split => Some((virt, hs)),
            _ => None,
        };
        let (mut lvl_trees, stats) = if let Some((virt, hs)) = approx {
            clusters::approx_clusters(
                g,
                virt,
                hs,
                &roots,
                i,
                &next.dist,
                params.epsilon,
                beta_budget,
                d as u64,
                &mut ledger,
                &mut memory,
            )
        } else {
            let mut scratch = CostLedger::new();
            let led = if distributed {
                &mut ledger
            } else {
                &mut scratch
            };
            clusters::exact_clusters(
                g,
                &roots,
                i,
                &next.dist,
                pivots::exploration_depth(n, i + 1, k),
                led,
                &mut memory,
            )
        };
        beta_used = beta_used.max(stats.beta_used);
        level_stats.push(stats);
        trees.append(&mut lvl_trees);
    }
    rec.charge(&ledger.counters().delta_since(&clusters_entry));
    rec.end_with_memory(clusters_span, memory.peaks());

    // Overlap s: memberships per vertex.
    let mut overlap = vec![0usize; n];
    for t in &trees {
        for &u in t.members.keys() {
            overlap[u.index()] += 1;
        }
    }
    let max_membership = overlap.iter().copied().max().unwrap_or(0);
    let total_membership: usize = trees.iter().map(SparseTree::len).sum();

    // Tree-routing stage: one exact tree scheme per cluster tree. In the
    // distributed modes all trees run in parallel with random start offsets
    // (Theorem 2's second assertion): q = 1/√(sn), window = √(sn)·log n.
    let tree_span = rec.begin("scheme/tree-routing");
    let tree_entry = ledger.counters();
    let s = max_membership.max(1);
    let q_tree = 1.0 / ((s * n) as f64).sqrt();
    let window = (((s * n) as f64).sqrt() as u64 + 1)
        * (tree_distributed::log2_ceil(n.max(2)) as u64).max(1);
    let mut tree_tables: Vec<HashMap<VertexId, TreeTableKind>> =
        trees.iter().map(|_| HashMap::new()).collect();
    let mut tree_labels: Vec<HashMap<VertexId, TreeLabelKind>> =
        trees.iter().map(|_| HashMap::new()).collect();
    let mut tree_stage_rounds = 0u64;
    let mut max_finish = 0u64;
    for (idx, t) in trees.iter().enumerate() {
        let dense = t.to_rooted(n);
        match params.mode {
            Mode::Centralized => {
                let scheme = tz::build(&dense);
                let sparse = SparseTreeScheme::from_dense(&scheme);
                tree_tables[idx] = sparse
                    .tables
                    .into_iter()
                    .map(|(v, t)| (v, TreeTableKind::Ours(t)))
                    .collect();
                tree_labels[idx] = sparse
                    .labels
                    .into_iter()
                    .map(|(v, l)| (v, TreeLabelKind::Ours(l)))
                    .collect();
            }
            Mode::DistributedLowMemory => {
                let out = tree_distributed::build(
                    &network,
                    &dense,
                    &tree_distributed::Config {
                        q: Some(q_tree.clamp(0.0, 1.0)),
                        backbone_depth: Some(d),
                        threads: params.threads,
                    },
                    rng,
                );
                let offset = rng.gen_range(0..=window);
                max_finish = max_finish.max(offset + out.ledger.rounds());
                ledger.charge_messages(out.ledger.messages());
                memory.merge_concurrent(&out.memory);
                let sparse = SparseTreeScheme::from_dense(&out.scheme);
                tree_tables[idx] = sparse
                    .tables
                    .into_iter()
                    .map(|(v, t)| (v, TreeTableKind::Ours(t)))
                    .collect();
                tree_labels[idx] = sparse
                    .labels
                    .into_iter()
                    .map(|(v, l)| (v, TreeLabelKind::Ours(l)))
                    .collect();
            }
            Mode::DistributedPrior => {
                let out = tree_routing::baseline::build_with_backbone(
                    &network,
                    &dense,
                    Some(q_tree.clamp(0.0, 1.0)),
                    Some(d),
                    rng,
                );
                let offset = rng.gen_range(0..=window);
                max_finish = max_finish.max(offset + out.ledger.rounds());
                ledger.charge_messages(out.ledger.messages());
                memory.merge_concurrent(&out.memory);
                let sparse = SparseBaselineScheme::from_dense(&out.scheme);
                tree_tables[idx] = sparse
                    .tables
                    .into_iter()
                    .map(|(v, t)| (v, TreeTableKind::Prior(t)))
                    .collect();
                tree_labels[idx] = sparse
                    .labels
                    .into_iter()
                    .map(|(v, l)| (v, TreeLabelKind::Prior(l)))
                    .collect();
            }
        }
    }
    if distributed {
        tree_stage_rounds = window + max_finish;
        ledger.charge_rounds(tree_stage_rounds);
    }
    rec.charge(&ledger.counters().delta_since(&tree_entry));
    rec.end_with_memory(tree_span, memory.peaks());

    // Assemble per-vertex tables.
    let assembly_span = rec.begin("scheme/assembly");
    let tree_index: HashMap<VertexId, usize> =
        trees.iter().enumerate().map(|(i, t)| (t.root, i)).collect();
    let mut tables: Vec<RoutingTable> = (0..n).map(|_| RoutingTable::default()).collect();
    for (idx, t) in trees.iter().enumerate() {
        for (&u, info) in &t.members {
            let kind = tree_tables[idx]
                .get(&u)
                .expect("member has a tree table")
                .clone();
            tables[u.index()].entries.push(TableEntry {
                root: t.root,
                level: t.level,
                dist: info.dist,
                table: kind,
            });
        }
    }
    for table in &mut tables {
        table.entries.sort_by_key(|e| e.root);
    }

    // Assemble per-vertex labels.
    let mut labels: Vec<RoutingLabel> = (0..n).map(|_| RoutingLabel::default()).collect();
    for v in g.vertices() {
        for (i, lvl) in pivot_levels.iter().enumerate().take(realized) {
            let (pivot, _pdist) = match (lvl.pivot[v.index()], lvl.dist[v.index()]) {
                (Some(p), pd) if pd != INFINITY => (p, pd),
                _ => continue,
            };
            let Some(&idx) = tree_index.get(&pivot) else {
                continue;
            };
            let Some(info) = trees[idx].members.get(&v) else {
                continue; // v outside the pivot's tree: skip this level
            };
            let Some(tl) = tree_labels[idx].get(&v) else {
                continue;
            };
            labels[v.index()].entries.push(LabelEntry {
                level: i,
                pivot,
                dist: info.dist,
                tree_label: tl.clone(),
            });
        }
    }

    // Pivot info retained per vertex (O(k) words; powers the oracle).
    let pivot_info: Vec<Vec<(VertexId, Weight)>> = g
        .vertices()
        .map(|v| {
            (0..realized)
                .filter_map(|i| {
                    match (
                        pivot_levels[i].pivot[v.index()],
                        pivot_levels[i].dist[v.index()],
                    ) {
                        (Some(p), d) if d != INFINITY => Some((p, d)),
                        _ => None,
                    }
                })
                .collect()
        })
        .collect();

    let scheme = RoutingScheme {
        k,
        mode: params.mode,
        tables,
        labels,
        pivot_info,
    };
    // Final outputs are part of the memory bound; charging through
    // `resident_words` keeps the meter and the audit attribution on the
    // same definition of "what a vertex holds".
    for v in g.vertices() {
        memory.add(v, scheme.resident_words(v));
    }
    rec.end_with_memory(assembly_span, memory.peaks());
    rec.set_run_memory(memory.peaks());
    let report = BuildReport {
        rounds: if distributed { ledger.rounds() } else { 0 },
        messages: ledger.messages(),
        memory,
        bfs_depth: d,
        virtual_count: virt.as_ref().map_or(0, |v| v.virtual_vertices().len()),
        hopset_edges,
        hopset_arboricity,
        beta_used,
        cluster_count: trees.len(),
        total_membership,
        max_membership,
        level_stats,
        max_table_words: scheme.max_table_words(),
        max_label_words: scheme.max_label_words(),
        tree_stage_rounds,
    };
    Built {
        scheme,
        trees,
        hopset: hs,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn er(n: usize, seed: u64) -> (Graph, ChaCha8Rng) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 3.0 / n as f64, 1..=9, &mut rng);
        (g, rng)
    }

    #[test]
    fn every_vertex_roots_exactly_one_tree() {
        let (g, mut rng) = er(100, 301);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        assert_eq!(built.trees.len(), 100);
        let mut roots: Vec<VertexId> = built.trees.iter().map(|t| t.root).collect();
        roots.sort();
        roots.dedup();
        assert_eq!(roots.len(), 100);
    }

    #[test]
    fn every_vertex_has_a_top_level_label_entry() {
        let (g, mut rng) = er(100, 302);
        let built = build(&g, &BuildParams::new(3), &mut rng);
        for v in g.vertices() {
            assert!(
                !built.scheme.labels[v.index()].entries.is_empty(),
                "{v} has an empty label"
            );
        }
    }

    #[test]
    fn tables_contain_own_cluster() {
        let (g, mut rng) = er(80, 303);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        for v in g.vertices() {
            let entry = built.scheme.tables[v.index()].entry(v);
            assert!(entry.is_some(), "{v} missing its own cluster");
            assert_eq!(entry.unwrap().dist, 0);
        }
    }

    #[test]
    fn centralized_mode_reports_zero_rounds() {
        let (g, mut rng) = er(60, 304);
        let built = build(
            &g,
            &BuildParams::new(2).with_mode(Mode::Centralized),
            &mut rng,
        );
        assert_eq!(built.report.rounds, 0);
        assert!(built.report.max_table_words > 0);
    }

    #[test]
    fn distributed_matches_structure_of_centralized() {
        // Same seeds → same hierarchy → same exact-level clusters; the
        // distributed low-memory run must produce tables/labels for the same
        // membership structure.
        let (g, _) = er(80, 305);
        let mut rng1 = ChaCha8Rng::seed_from_u64(999);
        let mut rng2 = ChaCha8Rng::seed_from_u64(999);
        let c = build(
            &g,
            &BuildParams::new(2).with_mode(Mode::Centralized),
            &mut rng1,
        );
        let d = build(&g, &BuildParams::new(2), &mut rng2);
        assert_eq!(c.trees.len(), d.trees.len());
        // Exact levels coincide exactly.
        for (tc, td) in c.trees.iter().zip(&d.trees) {
            if tc.level == 0 {
                assert_eq!(tc.root, td.root);
                let mc: std::collections::BTreeSet<_> = tc.members.keys().collect();
                let md: std::collections::BTreeSet<_> = td.members.keys().collect();
                assert_eq!(mc, md, "level-0 cluster of {} differs", tc.root);
            }
        }
    }

    #[test]
    fn membership_bound_claim6() {
        let (g, mut rng) = er(200, 306);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        let n = 200f64;
        let bound = 4.0 * n.powf(0.5) * n.ln();
        assert!(
            (built.report.max_membership as f64) <= bound,
            "membership {} exceeds Claim 6 bound {}",
            built.report.max_membership,
            bound
        );
    }

    #[test]
    fn prior_mode_uses_more_memory() {
        let (g, _) = er(250, 307);
        let mut rng1 = ChaCha8Rng::seed_from_u64(7);
        let mut rng2 = ChaCha8Rng::seed_from_u64(7);
        let ours = build(&g, &BuildParams::new(2), &mut rng1);
        let prior = build(
            &g,
            &BuildParams::new(2).with_mode(Mode::DistributedPrior),
            &mut rng2,
        );
        assert!(
            prior.report.memory.max_peak() > ours.report.memory.max_peak(),
            "prior {} should exceed ours {}",
            prior.report.memory.max_peak(),
            ours.report.memory.max_peak()
        );
        // Prior labels carry the log² factor.
        assert!(prior.report.max_label_words >= ours.report.max_label_words);
    }

    #[test]
    fn larger_k_means_smaller_tables() {
        let (g, _) = er(300, 308);
        let mut rng1 = ChaCha8Rng::seed_from_u64(11);
        let mut rng2 = ChaCha8Rng::seed_from_u64(11);
        let k2 = build(&g, &BuildParams::new(2), &mut rng1);
        let k4 = build(&g, &BuildParams::new(4), &mut rng2);
        assert!(
            k4.report.total_membership < k2.report.total_membership,
            "k=4 memberships {} should be below k=2 {}",
            k4.report.total_membership,
            k2.report.total_membership
        );
    }

    #[test]
    fn observed_build_phases_partition_the_ledger() {
        let (g, mut rng) = er(120, 310);
        let mut rec = obs::Recorder::new();
        let built = build_observed(&g, &BuildParams::new(3), &mut rng, &mut rec);
        // Every ledger charge is attributed to exactly one top-level phase.
        assert_eq!(rec.totals().rounds, built.report.rounds);
        assert_eq!(rec.totals().messages, built.report.messages);
        let top: Vec<&str> = rec
            .spans()
            .iter()
            .filter(|s| s.depth == 0)
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(
            top,
            [
                "scheme/backbone",
                "scheme/hierarchy",
                "scheme/hopset",
                "scheme/pivots",
                "scheme/clusters",
                "scheme/tree-routing",
                "scheme/assembly",
            ]
        );
        let sum: u64 = rec
            .spans()
            .iter()
            .filter(|s| s.depth == 0)
            .map(|s| s.delta.rounds)
            .sum();
        assert_eq!(sum, rec.totals().rounds);
        // The hopset's own spans nest beneath scheme/hopset.
        let hopset_seq = rec
            .spans()
            .iter()
            .find(|s| s.name == "scheme/hopset")
            .unwrap()
            .seq;
        assert!(rec
            .spans()
            .iter()
            .any(|s| s.parent == Some(hopset_seq) && s.name.starts_with("hopset/")));
        // The assembly span's memory snapshot is the final peak.
        assert_eq!(
            rec.spans().last().unwrap().peak_memory_words,
            built.report.memory.max_peak()
        );
    }

    #[test]
    fn observed_build_equals_plain_build() {
        // Same seed, recorder on vs. off: identical scheme and report.
        let (g, _) = er(90, 311);
        let mut rng1 = ChaCha8Rng::seed_from_u64(42);
        let mut rng2 = ChaCha8Rng::seed_from_u64(42);
        let plain = build(&g, &BuildParams::new(2), &mut rng1);
        let mut rec = obs::Recorder::new();
        let observed = build_observed(&g, &BuildParams::new(2), &mut rng2, &mut rec);
        assert_eq!(plain.report.rounds, observed.report.rounds);
        assert_eq!(plain.report.messages, observed.report.messages);
        assert_eq!(
            plain.report.memory.max_peak(),
            observed.report.memory.max_peak()
        );
        assert_eq!(plain.trees.len(), observed.trees.len());
        assert_eq!(
            plain.report.max_table_words,
            observed.report.max_table_words
        );
    }

    #[test]
    fn label_entries_are_sorted_and_bounded_by_k() {
        let (g, mut rng) = er(120, 309);
        let built = build(&g, &BuildParams::new(3), &mut rng);
        for v in g.vertices() {
            let entries = &built.scheme.labels[v.index()].entries;
            assert!(entries.len() <= 3);
            for w in entries.windows(2) {
                assert!(w[0].level < w[1].level);
            }
        }
    }
}
