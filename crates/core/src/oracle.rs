//! The Thorup–Zwick approximate distance oracle (\[TZ01a\]), answered from the
//! routing scheme's own data.
//!
//! The scheme already stores everything the oracle needs: each vertex's
//! *bunch with distances* (the table: every tree containing it, with the
//! estimate to the root) and its per-level pivots
//! ([`RoutingScheme::pivot_info`]). The classical alternating query then
//! returns a distance estimate with stretch at most `2k − 1` (+`o(1)` from
//! the approximate clusters/pivots) — without touching the graph.
//!
//! This is the query-side counterpart of routing: `route` moves a message
//! with stretch ≤ 4k−3, `query` *predicts* a distance with stretch ≤ 2k−1.

use graphs::{VertexId, Weight, INFINITY};

use crate::scheme::RoutingScheme;

/// A borrowed view of the scheme exposing distance queries.
///
/// # Examples
///
/// ```
/// use graphs::{generators, VertexId};
/// use routing::{build, BuildParams, oracle::DistanceOracle};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
/// let g = generators::erdos_renyi_connected(60, 0.08, 1..=9, &mut rng);
/// let built = build(&g, &BuildParams::new(2), &mut rng);
/// let oracle = DistanceOracle::new(&built.scheme);
/// let est = oracle.query(VertexId(0), VertexId(42));
/// let exact = graphs::shortest_paths::dijkstra(&g, VertexId(0))[42];
/// assert!(est >= exact && est as f64 <= 3.5 * exact as f64); // ≤ 2k−1 (+o(1))
/// ```
#[derive(Clone, Copy, Debug)]
pub struct DistanceOracle<'a> {
    scheme: &'a RoutingScheme,
}

impl<'a> DistanceOracle<'a> {
    /// Wrap a scheme.
    pub fn new(scheme: &'a RoutingScheme) -> Self {
        DistanceOracle { scheme }
    }

    /// The classical alternating bunch query: estimate `d(u, v)`.
    ///
    /// Returns [`INFINITY`] if the endpoints share no tree (different
    /// components). The estimate never undershoots the true distance.
    pub fn query(&self, u: VertexId, v: VertexId) -> Weight {
        if u == v {
            return 0;
        }
        let (mut x, mut y) = (u, v);
        let mut w = x;
        let mut d_xw: Weight = 0;
        let mut i = 0usize;
        loop {
            if let Some(e) = self.scheme.tables[y.index()].entry(w) {
                return d_xw.saturating_add(e.dist);
            }
            i += 1;
            std::mem::swap(&mut x, &mut y);
            match self.scheme.pivot_info[x.index()].get(i) {
                Some(&(p, d)) => {
                    w = p;
                    d_xw = d;
                }
                None => return INFINITY,
            }
        }
    }

    /// Words of oracle-specific state at `v` beyond the routing table
    /// (the pivot list).
    pub fn extra_words(&self, v: VertexId) -> usize {
        2 * self.scheme.pivot_info[v.index()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{build, BuildParams, Mode};
    use graphs::{generators, shortest_paths, Graph};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn er(n: usize, seed: u64) -> (Graph, ChaCha8Rng) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 3.0 / n as f64, 1..=9, &mut rng);
        (g, rng)
    }

    fn check_all_pairs(g: &Graph, scheme: &RoutingScheme, bound: f64) -> f64 {
        let oracle = DistanceOracle::new(scheme);
        let mut worst: f64 = 1.0;
        for u in g.vertices() {
            let exact = shortest_paths::dijkstra(g, u);
            for v in g.vertices() {
                if u == v {
                    assert_eq!(oracle.query(u, v), 0);
                    continue;
                }
                let est = oracle.query(u, v);
                assert!(est >= exact[v.index()], "undershoot {u}->{v}");
                let stretch = est as f64 / exact[v.index()] as f64;
                assert!(
                    stretch <= bound,
                    "oracle stretch {stretch} for {u}->{v} exceeds {bound}"
                );
                worst = worst.max(stretch);
            }
        }
        worst
    }

    #[test]
    fn oracle_stretch_2k_minus_1_centralized() {
        for k in [2usize, 3] {
            let (g, mut rng) = er(70, 500 + k as u64);
            let built = build(
                &g,
                &BuildParams::new(k).with_mode(Mode::Centralized),
                &mut rng,
            );
            check_all_pairs(&g, &built.scheme, (2 * k - 1) as f64 + 1e-9);
        }
    }

    #[test]
    fn oracle_stretch_2k_minus_1_distributed() {
        for k in [2usize, 3] {
            let (g, mut rng) = er(70, 510 + k as u64);
            let built = build(&g, &BuildParams::new(k), &mut rng);
            // Approximate clusters add an o(1) slack.
            check_all_pairs(&g, &built.scheme, (2 * k - 1) as f64 + 0.5);
        }
    }

    #[test]
    fn oracle_beats_routing_stretch_bound() {
        // 2k-1 < 4k-3 for k ≥ 2: the oracle's estimate cannot be worse than
        // the routed path is *guaranteed* to be (though an actual routed
        // path may happen to be shorter than the estimate).
        let (g, mut rng) = er(60, 520);
        let built = build(&g, &BuildParams::new(3), &mut rng);
        let worst = check_all_pairs(&g, &built.scheme, 5.5);
        assert!(worst <= 5.5);
    }

    #[test]
    fn oracle_on_geometric_networks() {
        let mut rng = ChaCha8Rng::seed_from_u64(530);
        let g = generators::random_geometric_connected(70, 0.17, 1..=9, &mut rng);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        check_all_pairs(&g, &built.scheme, 3.5);
    }

    #[test]
    fn disconnected_pairs_are_infinite() {
        let mut b = graphs::GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(2), VertexId(3), 1);
        let g = b.build();
        let mut rng = ChaCha8Rng::seed_from_u64(540);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        let oracle = DistanceOracle::new(&built.scheme);
        assert_eq!(oracle.query(VertexId(0), VertexId(3)), INFINITY);
        assert_eq!(oracle.query(VertexId(0), VertexId(1)), 1);
    }

    #[test]
    fn oracle_extra_state_is_o_k_words() {
        let (g, mut rng) = er(80, 550);
        let built = build(&g, &BuildParams::new(4), &mut rng);
        let oracle = DistanceOracle::new(&built.scheme);
        for v in g.vertices() {
            assert!(oracle.extra_words(v) <= 2 * 4);
        }
    }
}
