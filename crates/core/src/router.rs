//! The routing phase: forward a message using only tables, the target's
//! label, and a constant-size header (the chosen tree root).
//!
//! The sender inspects the target's label, keeps the entries whose pivot
//! tree it belongs to itself, and commits to one tree (the header). Every
//! subsequent vertex applies its stored tree-routing rule for that tree.
//! [`Selection::SourceOptimal`] picks the valid entry minimizing the
//! estimated round trip `d̂(u, w) + d̂(w, v)` — the paper's `4k−5` refinement
//! of the first-valid `4k−3` rule.

use graphs::{Graph, VertexId, Weight, INFINITY};
use std::fmt;
use tree_routing::baseline;
use tree_routing::types::{route_step, RouteAction};

use crate::scheme::{RoutingScheme, TreeLabelKind, TreeTableKind};

/// How the source picks among valid label entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Selection {
    /// Lowest valid level (the classical `4k − 3` argument).
    FirstValid,
    /// Minimize `d̂(u, w) + d̂(w, v)` over valid entries (`4k − 5`-style).
    SourceOptimal,
    /// Handshake: the endpoints probe every tree shared through the target's
    /// label and commit to the one whose *realized* route is shortest. This
    /// is a measured upper-bound improvement over [`Selection::SourceOptimal`]
    /// (never worse, typically slightly better); Thorup–Zwick's full
    /// handshaking variant (stretch `2k − 1`) additionally meets at
    /// source-side pivots and is not implemented.
    Handshake,
}

/// A completed route.
#[derive(Clone, Debug)]
pub struct GraphRouteTrace {
    /// Vertices visited, source first, target last.
    pub path: Vec<VertexId>,
    /// Total weight of traversed edges.
    pub weight: Weight,
    /// The tree the message committed to (its root).
    pub tree_root: VertexId,
    /// The hierarchy level of the chosen entry.
    pub level: usize,
}

impl GraphRouteTrace {
    /// Number of edges traversed.
    pub fn hops(&self) -> usize {
        self.path.len() - 1
    }
}

/// Why routing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphRouteError {
    /// No label entry's tree contains the source (disconnected pair, or a
    /// construction bug — tests treat it as such).
    NoCommonTree,
    /// The per-tree rule got stuck at this vertex.
    Stuck(VertexId),
    /// A vertex forwarded to a non-neighbor or a vertex without a table row.
    BadForward {
        /// Forwarding vertex.
        from: VertexId,
        /// Claimed next hop.
        to: VertexId,
    },
    /// Exceeded the hop cap — a forwarding loop.
    Loop,
}

impl fmt::Display for GraphRouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphRouteError::NoCommonTree => write!(f, "no tree contains both endpoints"),
            GraphRouteError::Stuck(v) => write!(f, "routing rule stuck at {v}"),
            GraphRouteError::BadForward { from, to } => {
                write!(f, "{from} forwarded to invalid hop {to}")
            }
            GraphRouteError::Loop => write!(f, "forwarding loop"),
        }
    }
}

impl std::error::Error for GraphRouteError {}

/// Route with [`Selection::SourceOptimal`].
///
/// # Errors
///
/// See [`GraphRouteError`].
pub fn route(
    g: &Graph,
    scheme: &RoutingScheme,
    src: VertexId,
    dst: VertexId,
) -> Result<GraphRouteTrace, GraphRouteError> {
    route_with(g, scheme, src, dst, Selection::SourceOptimal)
}

/// Route with an explicit source selection rule.
///
/// # Errors
///
/// See [`GraphRouteError`].
pub fn route_with(
    g: &Graph,
    scheme: &RoutingScheme,
    src: VertexId,
    dst: VertexId,
    selection: Selection,
) -> Result<GraphRouteTrace, GraphRouteError> {
    if src == dst {
        return Ok(GraphRouteTrace {
            path: vec![src],
            weight: 0,
            tree_root: src,
            level: 0,
        });
    }
    // The sender's decision: valid entries are those whose pivot tree it
    // belongs to.
    let label = &scheme.labels[dst.index()];
    let src_table = &scheme.tables[src.index()];
    if selection == Selection::Handshake {
        // Probe every shared tree and keep the best realized route.
        let mut best: Option<GraphRouteTrace> = None;
        for e in &label.entries {
            if src_table.entry(e.pivot).is_none() {
                continue;
            }
            let trace = route_in_tree(g, scheme, src, e)?;
            if best.as_ref().is_none_or(|b| trace.weight < b.weight) {
                best = Some(trace);
            }
        }
        return best.ok_or(GraphRouteError::NoCommonTree);
    }
    let mut chosen: Option<(&crate::scheme::LabelEntry, Weight)> = None;
    for e in &label.entries {
        let Some(te) = src_table.entry(e.pivot) else {
            continue;
        };
        let cost = te.dist.saturating_add(e.dist);
        match selection {
            Selection::FirstValid => {
                chosen = Some((e, cost));
                break;
            }
            Selection::SourceOptimal => {
                if chosen.is_none_or(|(_, c)| cost < c) {
                    chosen = Some((e, cost));
                }
            }
            Selection::Handshake => unreachable!("handled above"),
        }
    }
    let (entry, _) = chosen.ok_or(GraphRouteError::NoCommonTree)?;
    route_in_tree(g, scheme, src, entry)
}

/// Hop-by-hop forwarding inside the tree the label `entry` names.
fn route_in_tree(
    g: &Graph,
    scheme: &RoutingScheme,
    src: VertexId,
    entry: &crate::scheme::LabelEntry,
) -> Result<GraphRouteTrace, GraphRouteError> {
    let w = entry.pivot;
    let mut path = vec![src];
    let mut weight: Weight = 0;
    let mut cur = src;
    let cap = 4 * g.num_vertices() + 4;
    loop {
        if path.len() > cap {
            return Err(GraphRouteError::Loop);
        }
        let te = scheme.tables[cur.index()]
            .entry(w)
            .ok_or(GraphRouteError::Stuck(cur))?;
        let action = match (&te.table, &entry.tree_label) {
            (TreeTableKind::Ours(t), TreeLabelKind::Ours(l)) => route_step(cur, t, l),
            (TreeTableKind::Prior(t), TreeLabelKind::Prior(l)) => baseline::decide(cur, t, l),
            _ => None, // mixed kinds cannot arise from one build
        }
        .ok_or(GraphRouteError::Stuck(cur))?;
        match action {
            RouteAction::Deliver => {
                return Ok(GraphRouteTrace {
                    path,
                    weight,
                    tree_root: w,
                    level: entry.level,
                });
            }
            RouteAction::Forward(next) => {
                let Some(ew) = g.edge_weight(cur, next) else {
                    return Err(GraphRouteError::BadForward {
                        from: cur,
                        to: next,
                    });
                };
                weight += ew;
                path.push(next);
                cur = next;
            }
        }
    }
}

/// Stretch statistics over sampled pairs.
#[derive(Clone, Debug, Default)]
pub struct StretchStats {
    /// Pairs measured.
    pub pairs: usize,
    /// Worst stretch observed.
    pub max: f64,
    /// Mean stretch.
    pub mean: f64,
    /// Median stretch.
    pub p50: f64,
    /// 95th-percentile stretch.
    pub p95: f64,
    /// 99th-percentile stretch.
    pub p99: f64,
    /// Mean number of hops routed.
    pub mean_hops: f64,
    /// Every sampled stretch value, sorted ascending — the raw material for
    /// histogram records in run reports.
    pub values: Vec<f64>,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Route `srcs × all-other-vertices` (or all pairs if `srcs` is `None`) and
/// compare against exact Dijkstra distances.
///
/// # Panics
///
/// Panics if any reachable pair fails to route or undershoots the true
/// distance — either indicates a construction bug.
pub fn measure_stretch(
    g: &Graph,
    scheme: &RoutingScheme,
    srcs: &[VertexId],
    selection: Selection,
) -> StretchStats {
    let mut stats = StretchStats::default();
    let mut values = Vec::new();
    let mut hops = 0usize;
    for &s in srcs {
        let exact = graphs::shortest_paths::dijkstra(g, s);
        for t in g.vertices() {
            if t == s {
                continue;
            }
            if exact[t.index()] == INFINITY {
                continue;
            }
            let trace = route_with(g, scheme, s, t, selection)
                .unwrap_or_else(|e| panic!("route {s} -> {t} failed: {e}"));
            assert!(
                trace.weight >= exact[t.index()],
                "routed weight {} undershoots distance {}",
                trace.weight,
                exact[t.index()]
            );
            let stretch = trace.weight as f64 / exact[t.index()] as f64;
            stats.pairs += 1;
            stats.max = stats.max.max(stretch);
            values.push(stretch);
            hops += trace.hops();
        }
    }
    if stats.pairs > 0 {
        stats.mean = values.iter().sum::<f64>() / stats.pairs as f64;
        stats.mean_hops = hops as f64 / stats.pairs as f64;
        values.sort_by(|a, b| a.partial_cmp(b).expect("stretch is finite"));
        stats.p50 = percentile(&values, 0.50);
        stats.p95 = percentile(&values, 0.95);
        stats.p99 = percentile(&values, 0.99);
    }
    stats.values = values;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{build, BuildParams, Mode};
    use graphs::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn er(n: usize, seed: u64) -> (Graph, ChaCha8Rng) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 3.0 / n as f64, 1..=9, &mut rng);
        (g, rng)
    }

    fn all_sources(g: &Graph) -> Vec<VertexId> {
        g.vertices().collect()
    }

    #[test]
    fn stretch_bound_holds_centralized_k2() {
        let (g, mut rng) = er(70, 311);
        let built = build(
            &g,
            &BuildParams::new(2).with_mode(Mode::Centralized),
            &mut rng,
        );
        let stats = measure_stretch(&g, &built.scheme, &all_sources(&g), Selection::FirstValid);
        assert_eq!(stats.pairs, 70 * 69);
        assert!(
            stats.max <= (4 * 2 - 3) as f64 + 1e-9,
            "stretch {} exceeds 4k-3",
            stats.max
        );
    }

    #[test]
    fn stretch_bound_holds_distributed_k2() {
        let (g, mut rng) = er(70, 312);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        let stats = measure_stretch(
            &g,
            &built.scheme,
            &all_sources(&g),
            Selection::SourceOptimal,
        );
        assert!(
            stats.max <= (4 * 2 - 3) as f64 + 0.5,
            "stretch {} exceeds 4k-3+o(1)",
            stats.max
        );
    }

    #[test]
    fn stretch_bound_holds_distributed_k3() {
        let (g, mut rng) = er(90, 313);
        let built = build(&g, &BuildParams::new(3), &mut rng);
        let stats = measure_stretch(
            &g,
            &built.scheme,
            &all_sources(&g),
            Selection::SourceOptimal,
        );
        assert!(
            stats.max <= (4 * 3 - 3) as f64 + 0.5,
            "stretch {} exceeds 4k-3+o(1)",
            stats.max
        );
    }

    #[test]
    fn stretch_bound_holds_prior_mode() {
        let (g, mut rng) = er(60, 314);
        let built = build(
            &g,
            &BuildParams::new(2).with_mode(Mode::DistributedPrior),
            &mut rng,
        );
        let stats = measure_stretch(
            &g,
            &built.scheme,
            &all_sources(&g),
            Selection::SourceOptimal,
        );
        assert!(
            stats.max <= (4 * 2 - 3) as f64 + 0.5,
            "prior-mode stretch {} exceeds bound",
            stats.max
        );
    }

    #[test]
    fn source_optimal_never_worse_than_first_valid() {
        let (g, mut rng) = er(60, 315);
        let built = build(&g, &BuildParams::new(3), &mut rng);
        let srcs = all_sources(&g);
        let first = measure_stretch(&g, &built.scheme, &srcs, Selection::FirstValid);
        let best = measure_stretch(&g, &built.scheme, &srcs, Selection::SourceOptimal);
        assert!(best.mean <= first.mean + 1e-9);
    }

    #[test]
    fn handshake_never_worse_than_source_optimal() {
        let (g, mut rng) = er(60, 320);
        let built = build(&g, &BuildParams::new(3), &mut rng);
        let srcs = all_sources(&g);
        let optimal = measure_stretch(&g, &built.scheme, &srcs, Selection::SourceOptimal);
        let shake = measure_stretch(&g, &built.scheme, &srcs, Selection::Handshake);
        assert!(shake.mean <= optimal.mean + 1e-9);
        assert!(shake.max <= optimal.max + 1e-9);
    }

    #[test]
    fn handshake_respects_the_scheme_bound() {
        let (g, mut rng) = er(70, 321);
        let k = 2;
        let built = build(&g, &BuildParams::new(k), &mut rng);
        let srcs = all_sources(&g);
        let shake = measure_stretch(&g, &built.scheme, &srcs, Selection::Handshake);
        assert!(
            shake.max <= (4 * k - 3) as f64 + 0.5,
            "handshake stretch {} above the scheme bound",
            shake.max
        );
        assert!(shake.p50 >= 1.0 && shake.p50 <= shake.max);
    }

    #[test]
    fn percentiles_are_ordered_and_bounded() {
        let (g, mut rng) = er(60, 322);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        let stats = measure_stretch(
            &g,
            &built.scheme,
            &all_sources(&g),
            Selection::SourceOptimal,
        );
        assert!(1.0 <= stats.p50);
        assert!(stats.p50 <= stats.p95);
        assert!(stats.p95 <= stats.p99);
        assert!(stats.p99 <= stats.max);
        assert!(stats.mean >= 1.0 && stats.mean <= stats.max);
    }

    #[test]
    fn self_route_is_trivial() {
        let (g, mut rng) = er(30, 316);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        let trace = route(&g, &built.scheme, VertexId(5), VertexId(5)).unwrap();
        assert_eq!(trace.weight, 0);
        assert_eq!(trace.hops(), 0);
    }

    #[test]
    fn routes_on_geometric_networks() {
        let mut rng = ChaCha8Rng::seed_from_u64(317);
        let g = generators::random_geometric_connected(80, 0.16, 1..=9, &mut rng);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        let srcs: Vec<VertexId> = (0..80).step_by(8).map(|i| VertexId(i as u32)).collect();
        let stats = measure_stretch(&g, &built.scheme, &srcs, Selection::SourceOptimal);
        assert!(stats.max <= 5.5, "geometric stretch {}", stats.max);
    }

    #[test]
    fn disconnected_pairs_report_no_common_tree() {
        let mut b = graphs::GraphBuilder::new(6);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(1), VertexId(2), 1);
        b.add_edge(VertexId(3), VertexId(4), 1);
        b.add_edge(VertexId(4), VertexId(5), 1);
        let g = b.build();
        let mut rng = ChaCha8Rng::seed_from_u64(318);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        match route(&g, &built.scheme, VertexId(0), VertexId(5)) {
            Err(GraphRouteError::NoCommonTree) => {}
            other => panic!("expected NoCommonTree, got {other:?}"),
        }
        // Within a component routing still works.
        assert!(route(&g, &built.scheme, VertexId(0), VertexId(2)).is_ok());
    }

    #[test]
    fn route_reports_committed_tree() {
        let (g, mut rng) = er(50, 319);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        let trace = route(&g, &built.scheme, VertexId(1), VertexId(40)).unwrap();
        // The committed tree root must appear in both endpoints' views.
        assert!(built.scheme.tables[1].entry(trace.tree_root).is_some());
        let label = &built.scheme.labels[40];
        assert!(label.entries.iter().any(|e| e.pivot == trace.tree_root));
    }
}
