//! Persisting a built routing scheme to bytes and loading it back.
//!
//! Preprocessing is the expensive phase; deployments compute the scheme once
//! and ship each vertex its table and label. This module provides a compact,
//! versioned wire format (varint-based, reusing
//! [`tree_routing::encode`]'s primitives) for whole schemes built in the
//! paper's modes ([`Mode::Centralized`] / [`Mode::DistributedLowMemory`]);
//! the prior-baseline mode exists for comparison only and is not
//! serialized.

use graphs::VertexId;
use tree_routing::encode::{read_varint, write_varint};
use tree_routing::types::{TreeLabel, TreeTable};

use crate::scheme::{
    LabelEntry, Mode, RoutingLabel, RoutingScheme, RoutingTable, TableEntry, TreeLabelKind,
    TreeTableKind,
};

const MAGIC: &[u8; 4] = b"DRS1";

/// Magic for the checksummed file container wrapping [`encode_scheme`] bytes.
const CONTAINER_MAGIC: &[u8; 4] = b"DRSC";
/// Current container format version.
const CONTAINER_VERSION: u64 = 1;

/// Why decoding failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PersistError {
    /// Missing or wrong magic/version header.
    BadHeader,
    /// Truncated or malformed varint stream.
    Malformed,
    /// The scheme used the prior-baseline tree family.
    UnsupportedMode,
    /// The container declares more payload bytes than the file holds.
    Truncated {
        /// Payload bytes the header promised.
        expected: usize,
        /// Payload bytes actually present.
        found: usize,
    },
    /// The payload does not match the stored CRC32 — bit rot or tampering.
    ChecksumMismatch {
        /// CRC32 recorded in the container header.
        stored: u32,
        /// CRC32 computed over the payload that was read.
        computed: u32,
    },
    /// Filesystem error while saving or loading (message from the OS).
    Io(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadHeader => write!(f, "bad magic or version header"),
            PersistError::Malformed => write!(f, "malformed scheme bytes"),
            PersistError::UnsupportedMode => {
                write!(f, "prior-baseline schemes are not serializable")
            }
            PersistError::Truncated { expected, found } => write!(
                f,
                "truncated container: header promises {expected} payload bytes, found {found}"
            ),
            PersistError::ChecksumMismatch { stored, computed } => write!(
                f,
                "payload checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            PersistError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// CRC32 (IEEE 802.3 polynomial, reflected) lookup table, built at compile
/// time so the container needs no external checksum crate.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes` — the checksum guarding container payloads.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Wrap a scheme in the checksummed file container: magic, version, payload
/// length, CRC32 over the payload, then the [`encode_scheme`] payload itself.
///
/// # Errors
///
/// [`PersistError::UnsupportedMode`] for prior-baseline schemes.
pub fn encode_container(s: &RoutingScheme) -> Result<Vec<u8>, PersistError> {
    let payload = encode_scheme(s)?;
    let mut buf = Vec::with_capacity(payload.len() + 16);
    buf.extend_from_slice(CONTAINER_MAGIC);
    write_varint(&mut buf, CONTAINER_VERSION);
    write_varint(&mut buf, payload.len() as u64);
    buf.extend_from_slice(&crc32(&payload).to_le_bytes());
    buf.extend_from_slice(&payload);
    Ok(buf)
}

/// Unwrap and verify a checksummed container produced by
/// [`encode_container`].
///
/// # Errors
///
/// [`PersistError::BadHeader`] on wrong magic or unknown version,
/// [`PersistError::Truncated`] when the file is shorter than the declared
/// payload, [`PersistError::ChecksumMismatch`] on CRC failure, and any
/// [`decode_scheme`] error for a corrupt payload that still checksums (only
/// possible if the header itself was damaged consistently).
pub fn decode_container(buf: &[u8]) -> Result<RoutingScheme, PersistError> {
    if buf.len() < 4 || &buf[..4] != CONTAINER_MAGIC {
        return Err(PersistError::BadHeader);
    }
    let mut pos = 4;
    if rv(buf, &mut pos)? != CONTAINER_VERSION {
        return Err(PersistError::BadHeader);
    }
    let len = rv(buf, &mut pos)? as usize;
    if buf.len() < pos + 4 {
        return Err(PersistError::Malformed);
    }
    let stored = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes checked"));
    pos += 4;
    let found = buf.len() - pos;
    if found < len {
        return Err(PersistError::Truncated {
            expected: len,
            found,
        });
    }
    if found > len {
        return Err(PersistError::Malformed);
    }
    let payload = &buf[pos..];
    let computed = crc32(payload);
    if computed != stored {
        return Err(PersistError::ChecksumMismatch { stored, computed });
    }
    decode_scheme(payload)
}

/// Write `scheme` to `path` inside the checksummed container.
///
/// # Errors
///
/// [`PersistError::UnsupportedMode`] for prior-baseline schemes and
/// [`PersistError::Io`] on filesystem failures.
pub fn save_scheme_to(
    path: impl AsRef<std::path::Path>,
    scheme: &RoutingScheme,
) -> Result<(), PersistError> {
    let bytes = encode_container(scheme)?;
    std::fs::write(path, bytes).map_err(|e| PersistError::Io(e.to_string()))
}

/// Read a scheme back from `path`.
///
/// Accepts both the checksummed container and legacy raw [`encode_scheme`]
/// files (magic `DRS1`) written before the container existed.
///
/// # Errors
///
/// [`PersistError::Io`] on filesystem failures, otherwise any
/// [`decode_container`] / [`decode_scheme`] error.
pub fn load_scheme_from(path: impl AsRef<std::path::Path>) -> Result<RoutingScheme, PersistError> {
    let bytes = std::fs::read(path).map_err(|e| PersistError::Io(e.to_string()))?;
    if bytes.len() >= 4 && &bytes[..4] == CONTAINER_MAGIC {
        decode_container(&bytes)
    } else {
        decode_scheme(&bytes)
    }
}

fn write_opt(buf: &mut Vec<u8>, v: Option<VertexId>) {
    write_varint(buf, v.map_or(0, |x| u64::from(x.0) + 1));
}

fn read_opt(buf: &[u8], pos: &mut usize) -> Result<Option<VertexId>, PersistError> {
    let raw = read_varint(buf, pos).ok_or(PersistError::Malformed)?;
    Ok(if raw == 0 {
        None
    } else {
        Some(VertexId((raw - 1) as u32))
    })
}

fn rv(buf: &[u8], pos: &mut usize) -> Result<u64, PersistError> {
    read_varint(buf, pos).ok_or(PersistError::Malformed)
}

fn write_tree_table(buf: &mut Vec<u8>, t: &TreeTable) {
    write_varint(buf, t.enter);
    write_varint(buf, t.exit - t.enter);
    write_opt(buf, t.parent);
    write_opt(buf, t.heavy);
}

fn read_tree_table(buf: &[u8], pos: &mut usize) -> Result<TreeTable, PersistError> {
    let enter = rv(buf, pos)?;
    let span = rv(buf, pos)?;
    let parent = read_opt(buf, pos)?;
    let heavy = read_opt(buf, pos)?;
    Ok(TreeTable {
        enter,
        exit: enter + span,
        parent,
        heavy,
    })
}

fn write_tree_label(buf: &mut Vec<u8>, l: &TreeLabel) {
    write_varint(buf, l.enter);
    write_varint(buf, l.light.len() as u64);
    for &(p, c) in &l.light {
        write_varint(buf, u64::from(p.0));
        write_varint(buf, u64::from(c.0));
    }
}

fn read_tree_label(buf: &[u8], pos: &mut usize) -> Result<TreeLabel, PersistError> {
    let enter = rv(buf, pos)?;
    let count = rv(buf, pos)? as usize;
    if count > buf.len() {
        return Err(PersistError::Malformed);
    }
    let mut light = Vec::with_capacity(count);
    for _ in 0..count {
        let p = VertexId(rv(buf, pos)? as u32);
        let c = VertexId(rv(buf, pos)? as u32);
        light.push((p, c));
    }
    Ok(TreeLabel { enter, light })
}

/// Serialize a scheme.
///
/// # Errors
///
/// [`PersistError::UnsupportedMode`] for prior-baseline schemes.
pub fn encode_scheme(s: &RoutingScheme) -> Result<Vec<u8>, PersistError> {
    if s.mode == Mode::DistributedPrior {
        return Err(PersistError::UnsupportedMode);
    }
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    write_varint(&mut buf, s.k as u64);
    write_varint(
        &mut buf,
        match s.mode {
            Mode::Centralized => 0,
            Mode::DistributedLowMemory => 1,
            Mode::DistributedPrior => unreachable!("rejected above"),
        },
    );
    write_varint(&mut buf, s.tables.len() as u64);
    for table in &s.tables {
        write_varint(&mut buf, table.entries.len() as u64);
        for e in &table.entries {
            let TreeTableKind::Ours(t) = &e.table else {
                return Err(PersistError::UnsupportedMode);
            };
            write_varint(&mut buf, u64::from(e.root.0));
            write_varint(&mut buf, e.level as u64);
            write_varint(&mut buf, e.dist);
            write_tree_table(&mut buf, t);
        }
    }
    for label in &s.labels {
        write_varint(&mut buf, label.entries.len() as u64);
        for e in &label.entries {
            let TreeLabelKind::Ours(l) = &e.tree_label else {
                return Err(PersistError::UnsupportedMode);
            };
            write_varint(&mut buf, e.level as u64);
            write_varint(&mut buf, u64::from(e.pivot.0));
            write_varint(&mut buf, e.dist);
            write_tree_label(&mut buf, l);
        }
    }
    for pivots in &s.pivot_info {
        write_varint(&mut buf, pivots.len() as u64);
        for &(p, d) in pivots {
            write_varint(&mut buf, u64::from(p.0));
            write_varint(&mut buf, d);
        }
    }
    Ok(buf)
}

/// Deserialize a scheme.
///
/// # Errors
///
/// [`PersistError`] on any malformed input.
pub fn decode_scheme(buf: &[u8]) -> Result<RoutingScheme, PersistError> {
    if buf.len() < 4 || &buf[..4] != MAGIC {
        return Err(PersistError::BadHeader);
    }
    let mut pos = 4;
    let k = rv(buf, &mut pos)? as usize;
    let mode = match rv(buf, &mut pos)? {
        0 => Mode::Centralized,
        1 => Mode::DistributedLowMemory,
        _ => return Err(PersistError::BadHeader),
    };
    let n = rv(buf, &mut pos)? as usize;
    if n > buf.len() {
        return Err(PersistError::Malformed);
    }
    let mut tables = Vec::with_capacity(n);
    for _ in 0..n {
        let count = rv(buf, &mut pos)? as usize;
        if count > buf.len() {
            return Err(PersistError::Malformed);
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let root = VertexId(rv(buf, &mut pos)? as u32);
            let level = rv(buf, &mut pos)? as usize;
            let dist = rv(buf, &mut pos)?;
            let t = read_tree_table(buf, &mut pos)?;
            entries.push(TableEntry {
                root,
                level,
                dist,
                table: TreeTableKind::Ours(t),
            });
        }
        tables.push(RoutingTable { entries });
    }
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let count = rv(buf, &mut pos)? as usize;
        if count > buf.len() {
            return Err(PersistError::Malformed);
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let level = rv(buf, &mut pos)? as usize;
            let pivot = VertexId(rv(buf, &mut pos)? as u32);
            let dist = rv(buf, &mut pos)?;
            let l = read_tree_label(buf, &mut pos)?;
            entries.push(LabelEntry {
                level,
                pivot,
                dist,
                tree_label: TreeLabelKind::Ours(l),
            });
        }
        labels.push(RoutingLabel { entries });
    }
    let mut pivot_info = Vec::with_capacity(n);
    for _ in 0..n {
        let count = rv(buf, &mut pos)? as usize;
        if count > buf.len() {
            return Err(PersistError::Malformed);
        }
        let mut pivots = Vec::with_capacity(count);
        for _ in 0..count {
            let p = VertexId(rv(buf, &mut pos)? as u32);
            let d = rv(buf, &mut pos)?;
            pivots.push((p, d));
        }
        pivot_info.push(pivots);
    }
    if pos != buf.len() {
        return Err(PersistError::Malformed);
    }
    Ok(RoutingScheme {
        k,
        mode,
        tables,
        labels,
        pivot_info,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router;
    use crate::scheme::{build, BuildParams};
    use graphs::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn scheme(n: usize, seed: u64) -> (graphs::Graph, RoutingScheme) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 3.0 / n as f64, 1..=9, &mut rng);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        (g, built.scheme)
    }

    #[test]
    fn round_trips_and_routes_identically() {
        let (g, s) = scheme(60, 1101);
        let bytes = encode_scheme(&s).unwrap();
        let back = decode_scheme(&bytes).unwrap();
        assert_eq!(back.k, s.k);
        assert_eq!(back.mode, s.mode);
        for v in g.vertices() {
            assert_eq!(back.tables[v.index()].entries, s.tables[v.index()].entries);
            assert_eq!(back.pivot_info[v.index()], s.pivot_info[v.index()]);
        }
        // Routing through the reloaded scheme gives identical traces.
        for (a, b) in [(0u32, 59u32), (17, 33)] {
            let t1 = router::route(&g, &s, VertexId(a), VertexId(b)).unwrap();
            let t2 = router::route(&g, &back, VertexId(a), VertexId(b)).unwrap();
            assert_eq!(t1.path, t2.path);
            assert_eq!(t1.weight, t2.weight);
        }
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let (_, s) = scheme(30, 1102);
        let mut bytes = encode_scheme(&s).unwrap();
        assert!(matches!(
            decode_scheme(b"nope"),
            Err(PersistError::BadHeader)
        ));
        bytes.truncate(bytes.len() - 3);
        assert!(matches!(
            decode_scheme(&bytes),
            Err(PersistError::Malformed)
        ));
    }

    #[test]
    fn rejects_trailing_bytes() {
        let (_, s) = scheme(30, 1103);
        let mut bytes = encode_scheme(&s).unwrap();
        bytes.push(7);
        assert!(matches!(
            decode_scheme(&bytes),
            Err(PersistError::Malformed)
        ));
    }

    #[test]
    fn prior_mode_is_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(1104);
        let g = generators::erdos_renyi_connected(40, 0.08, 1..=9, &mut rng);
        let built = build(
            &g,
            &BuildParams::new(2).with_mode(crate::scheme::Mode::DistributedPrior),
            &mut rng,
        );
        assert_eq!(
            encode_scheme(&built.scheme),
            Err(PersistError::UnsupportedMode)
        );
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE check values ("123456789" is the canonical one).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn container_round_trips_through_disk() {
        let (g, s) = scheme(50, 1106);
        let path = std::env::temp_dir().join("drt-persist-roundtrip.drsc");
        save_scheme_to(&path, &s).unwrap();
        let back = load_scheme_from(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.k, s.k);
        assert_eq!(back.mode, s.mode);
        for v in g.vertices() {
            assert_eq!(back.tables[v.index()].entries, s.tables[v.index()].entries);
            assert_eq!(back.labels[v.index()].entries, s.labels[v.index()].entries);
            assert_eq!(back.pivot_info[v.index()], s.pivot_info[v.index()]);
        }
    }

    #[test]
    fn load_accepts_legacy_raw_scheme_files() {
        let (_, s) = scheme(30, 1107);
        let path = std::env::temp_dir().join("drt-persist-legacy.bin");
        std::fs::write(&path, encode_scheme(&s).unwrap()).unwrap();
        let back = load_scheme_from(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.tables.len(), s.tables.len());
    }

    #[test]
    fn container_truncation_is_typed() {
        let (_, s) = scheme(30, 1108);
        let full = encode_container(&s).unwrap();
        let mut cut = full.clone();
        cut.truncate(full.len() - 10);
        match decode_container(&cut) {
            Err(PersistError::Truncated { expected, found }) => {
                assert_eq!(found + 10, expected, "10 payload bytes were removed");
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        // Cutting into the fixed header before the CRC is Malformed, not Truncated.
        assert!(matches!(
            decode_container(&full[..6]),
            Err(PersistError::Malformed)
        ));
    }

    #[test]
    fn container_corruption_is_typed() {
        let (_, s) = scheme(30, 1109);
        let mut bytes = encode_container(&s).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40; // flip a payload bit
        assert!(matches!(
            decode_container(&bytes),
            Err(PersistError::ChecksumMismatch { .. })
        ));
        assert!(matches!(
            decode_container(b"DRSX-----"),
            Err(PersistError::BadHeader)
        ));
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_scheme_from("/nonexistent/drt-no-such-scheme.drsc"),
            Err(PersistError::Io(_))
        ));
    }

    #[test]
    fn encoding_is_compact() {
        let (_, s) = scheme(100, 1105);
        let bytes = encode_scheme(&s).unwrap();
        let words: usize = s
            .tables
            .iter()
            .map(congest::WordSized::words)
            .sum::<usize>()
            + s.labels
                .iter()
                .map(congest::WordSized::words)
                .sum::<usize>();
        assert!(
            bytes.len() < 8 * words,
            "varint encoding ({} bytes) should beat raw words ({} bytes)",
            bytes.len(),
            8 * words
        );
    }
}
