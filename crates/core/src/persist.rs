//! Persisting a built routing scheme to bytes and loading it back.
//!
//! Preprocessing is the expensive phase; deployments compute the scheme once
//! and ship each vertex its table and label. This module provides a compact,
//! versioned wire format (varint-based, reusing
//! [`tree_routing::encode`]'s primitives) for whole schemes built in the
//! paper's modes ([`Mode::Centralized`] / [`Mode::DistributedLowMemory`]);
//! the prior-baseline mode exists for comparison only and is not
//! serialized.

use graphs::VertexId;
use tree_routing::encode::{read_varint, write_varint};
use tree_routing::types::{TreeLabel, TreeTable};

use crate::scheme::{
    LabelEntry, Mode, RoutingLabel, RoutingScheme, RoutingTable, TableEntry, TreeLabelKind,
    TreeTableKind,
};

const MAGIC: &[u8; 4] = b"DRS1";

/// Why decoding failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PersistError {
    /// Missing or wrong magic/version header.
    BadHeader,
    /// Truncated or malformed varint stream.
    Malformed,
    /// The scheme used the prior-baseline tree family.
    UnsupportedMode,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadHeader => write!(f, "bad magic or version header"),
            PersistError::Malformed => write!(f, "malformed scheme bytes"),
            PersistError::UnsupportedMode => {
                write!(f, "prior-baseline schemes are not serializable")
            }
        }
    }
}

impl std::error::Error for PersistError {}

fn write_opt(buf: &mut Vec<u8>, v: Option<VertexId>) {
    write_varint(buf, v.map_or(0, |x| u64::from(x.0) + 1));
}

fn read_opt(buf: &[u8], pos: &mut usize) -> Result<Option<VertexId>, PersistError> {
    let raw = read_varint(buf, pos).ok_or(PersistError::Malformed)?;
    Ok(if raw == 0 {
        None
    } else {
        Some(VertexId((raw - 1) as u32))
    })
}

fn rv(buf: &[u8], pos: &mut usize) -> Result<u64, PersistError> {
    read_varint(buf, pos).ok_or(PersistError::Malformed)
}

fn write_tree_table(buf: &mut Vec<u8>, t: &TreeTable) {
    write_varint(buf, t.enter);
    write_varint(buf, t.exit - t.enter);
    write_opt(buf, t.parent);
    write_opt(buf, t.heavy);
}

fn read_tree_table(buf: &[u8], pos: &mut usize) -> Result<TreeTable, PersistError> {
    let enter = rv(buf, pos)?;
    let span = rv(buf, pos)?;
    let parent = read_opt(buf, pos)?;
    let heavy = read_opt(buf, pos)?;
    Ok(TreeTable {
        enter,
        exit: enter + span,
        parent,
        heavy,
    })
}

fn write_tree_label(buf: &mut Vec<u8>, l: &TreeLabel) {
    write_varint(buf, l.enter);
    write_varint(buf, l.light.len() as u64);
    for &(p, c) in &l.light {
        write_varint(buf, u64::from(p.0));
        write_varint(buf, u64::from(c.0));
    }
}

fn read_tree_label(buf: &[u8], pos: &mut usize) -> Result<TreeLabel, PersistError> {
    let enter = rv(buf, pos)?;
    let count = rv(buf, pos)? as usize;
    if count > buf.len() {
        return Err(PersistError::Malformed);
    }
    let mut light = Vec::with_capacity(count);
    for _ in 0..count {
        let p = VertexId(rv(buf, pos)? as u32);
        let c = VertexId(rv(buf, pos)? as u32);
        light.push((p, c));
    }
    Ok(TreeLabel { enter, light })
}

/// Serialize a scheme.
///
/// # Errors
///
/// [`PersistError::UnsupportedMode`] for prior-baseline schemes.
pub fn encode_scheme(s: &RoutingScheme) -> Result<Vec<u8>, PersistError> {
    if s.mode == Mode::DistributedPrior {
        return Err(PersistError::UnsupportedMode);
    }
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    write_varint(&mut buf, s.k as u64);
    write_varint(
        &mut buf,
        match s.mode {
            Mode::Centralized => 0,
            Mode::DistributedLowMemory => 1,
            Mode::DistributedPrior => unreachable!("rejected above"),
        },
    );
    write_varint(&mut buf, s.tables.len() as u64);
    for table in &s.tables {
        write_varint(&mut buf, table.entries.len() as u64);
        for e in &table.entries {
            let TreeTableKind::Ours(t) = &e.table else {
                return Err(PersistError::UnsupportedMode);
            };
            write_varint(&mut buf, u64::from(e.root.0));
            write_varint(&mut buf, e.level as u64);
            write_varint(&mut buf, e.dist);
            write_tree_table(&mut buf, t);
        }
    }
    for label in &s.labels {
        write_varint(&mut buf, label.entries.len() as u64);
        for e in &label.entries {
            let TreeLabelKind::Ours(l) = &e.tree_label else {
                return Err(PersistError::UnsupportedMode);
            };
            write_varint(&mut buf, e.level as u64);
            write_varint(&mut buf, u64::from(e.pivot.0));
            write_varint(&mut buf, e.dist);
            write_tree_label(&mut buf, l);
        }
    }
    for pivots in &s.pivot_info {
        write_varint(&mut buf, pivots.len() as u64);
        for &(p, d) in pivots {
            write_varint(&mut buf, u64::from(p.0));
            write_varint(&mut buf, d);
        }
    }
    Ok(buf)
}

/// Deserialize a scheme.
///
/// # Errors
///
/// [`PersistError`] on any malformed input.
pub fn decode_scheme(buf: &[u8]) -> Result<RoutingScheme, PersistError> {
    if buf.len() < 4 || &buf[..4] != MAGIC {
        return Err(PersistError::BadHeader);
    }
    let mut pos = 4;
    let k = rv(buf, &mut pos)? as usize;
    let mode = match rv(buf, &mut pos)? {
        0 => Mode::Centralized,
        1 => Mode::DistributedLowMemory,
        _ => return Err(PersistError::BadHeader),
    };
    let n = rv(buf, &mut pos)? as usize;
    if n > buf.len() {
        return Err(PersistError::Malformed);
    }
    let mut tables = Vec::with_capacity(n);
    for _ in 0..n {
        let count = rv(buf, &mut pos)? as usize;
        if count > buf.len() {
            return Err(PersistError::Malformed);
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let root = VertexId(rv(buf, &mut pos)? as u32);
            let level = rv(buf, &mut pos)? as usize;
            let dist = rv(buf, &mut pos)?;
            let t = read_tree_table(buf, &mut pos)?;
            entries.push(TableEntry {
                root,
                level,
                dist,
                table: TreeTableKind::Ours(t),
            });
        }
        tables.push(RoutingTable { entries });
    }
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let count = rv(buf, &mut pos)? as usize;
        if count > buf.len() {
            return Err(PersistError::Malformed);
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let level = rv(buf, &mut pos)? as usize;
            let pivot = VertexId(rv(buf, &mut pos)? as u32);
            let dist = rv(buf, &mut pos)?;
            let l = read_tree_label(buf, &mut pos)?;
            entries.push(LabelEntry {
                level,
                pivot,
                dist,
                tree_label: TreeLabelKind::Ours(l),
            });
        }
        labels.push(RoutingLabel { entries });
    }
    let mut pivot_info = Vec::with_capacity(n);
    for _ in 0..n {
        let count = rv(buf, &mut pos)? as usize;
        if count > buf.len() {
            return Err(PersistError::Malformed);
        }
        let mut pivots = Vec::with_capacity(count);
        for _ in 0..count {
            let p = VertexId(rv(buf, &mut pos)? as u32);
            let d = rv(buf, &mut pos)?;
            pivots.push((p, d));
        }
        pivot_info.push(pivots);
    }
    if pos != buf.len() {
        return Err(PersistError::Malformed);
    }
    Ok(RoutingScheme {
        k,
        mode,
        tables,
        labels,
        pivot_info,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router;
    use crate::scheme::{build, BuildParams};
    use graphs::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn scheme(n: usize, seed: u64) -> (graphs::Graph, RoutingScheme) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 3.0 / n as f64, 1..=9, &mut rng);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        (g, built.scheme)
    }

    #[test]
    fn round_trips_and_routes_identically() {
        let (g, s) = scheme(60, 1101);
        let bytes = encode_scheme(&s).unwrap();
        let back = decode_scheme(&bytes).unwrap();
        assert_eq!(back.k, s.k);
        assert_eq!(back.mode, s.mode);
        for v in g.vertices() {
            assert_eq!(back.tables[v.index()].entries, s.tables[v.index()].entries);
            assert_eq!(back.pivot_info[v.index()], s.pivot_info[v.index()]);
        }
        // Routing through the reloaded scheme gives identical traces.
        for (a, b) in [(0u32, 59u32), (17, 33)] {
            let t1 = router::route(&g, &s, VertexId(a), VertexId(b)).unwrap();
            let t2 = router::route(&g, &back, VertexId(a), VertexId(b)).unwrap();
            assert_eq!(t1.path, t2.path);
            assert_eq!(t1.weight, t2.weight);
        }
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let (_, s) = scheme(30, 1102);
        let mut bytes = encode_scheme(&s).unwrap();
        assert!(matches!(
            decode_scheme(b"nope"),
            Err(PersistError::BadHeader)
        ));
        bytes.truncate(bytes.len() - 3);
        assert!(matches!(
            decode_scheme(&bytes),
            Err(PersistError::Malformed)
        ));
    }

    #[test]
    fn rejects_trailing_bytes() {
        let (_, s) = scheme(30, 1103);
        let mut bytes = encode_scheme(&s).unwrap();
        bytes.push(7);
        assert!(matches!(
            decode_scheme(&bytes),
            Err(PersistError::Malformed)
        ));
    }

    #[test]
    fn prior_mode_is_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(1104);
        let g = generators::erdos_renyi_connected(40, 0.08, 1..=9, &mut rng);
        let built = build(
            &g,
            &BuildParams::new(2).with_mode(crate::scheme::Mode::DistributedPrior),
            &mut rng,
        );
        assert_eq!(
            encode_scheme(&built.scheme),
            Err(PersistError::UnsupportedMode)
        );
    }

    #[test]
    fn encoding_is_compact() {
        let (_, s) = scheme(100, 1105);
        let bytes = encode_scheme(&s).unwrap();
        let words: usize = s
            .tables
            .iter()
            .map(congest::WordSized::words)
            .sum::<usize>()
            + s.labels
                .iter()
                .map(congest::WordSized::words)
                .sum::<usize>();
        assert!(
            bytes.len() < 8 * words,
            "varint encoding ({} bytes) should beat raw words ({} bytes)",
            bytes.len(),
            8 * words
        );
    }
}
