//! The scheme observatory: read-only audits of a built routing scheme.
//!
//! Three families of questions, answered without mutating anything:
//!
//! 1. **Where do the words live?** [`attribution`] splits every vertex's
//!    resident memory into named components — cluster-membership rows, tree
//!    tables, TZ label rows, tree labels, pivot sets — and the split is
//!    asserted to sum *exactly* to [`RoutingScheme::resident_words`], which
//!    is in turn exactly what the construction charged its
//!    [`congest::MemoryMeter`] for final outputs. No estimate anywhere: the
//!    reconciliation is word-for-word.
//! 2. **Does the structure hold?** [`audit`]/[`audit_built`] re-check the
//!    invariants the theorems lean on: the [`crate::verify`] structural
//!    checks, cover coverage (every vertex labeled in ≥ 1 pivot tree and
//!    owning its own cluster at distance 0), the Claim-6 membership bound
//!    `s ≤ 4·n^{1/k}·ln n`, DFS-interval nesting inside every cluster tree,
//!    distance-estimate soundness against exact Dijkstra on sampled
//!    sources, tree/table cross-consistency, and — when the hopset was
//!    retained — that sampled hopset records are realized by genuine
//!    `G`-paths of exactly their claimed weight.
//! 3. **Does it still route?** [`routing_probe`] samples source–target
//!    pairs (full sweep at small `n`), routes each one, and compares
//!    against exact distances and the central [`DistanceOracle`]. On the
//!    intact graph every failure is a violation; [`probe_perturbed`]
//!    re-runs the same probe against a seeded edge/vertex-killed copy of
//!    the graph with the *stale* tables, turning "what happens under
//!    churn" into measured reachability, stretch inflation, and misroute
//!    counts.
//!
//! Determinism: given the same graph, scheme, and [`AuditConfig`], every
//! audit function returns identical results — sampling is seeded, and
//! nothing depends on thread count or iteration order of hash maps (per-
//! tree walks sort before checking).

use std::collections::HashMap;

use congest::WordSized;
use graphs::{shortest_paths, Graph, Overlay, VertexId, Weight, INFINITY};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::oracle::DistanceOracle;
use crate::router::{self, GraphRouteError, Selection};
use crate::scheme::{Built, Mode, RoutingScheme, TreeTableKind};
use crate::verify::{self, Violation};

/// The resident memory components the attribution splits a vertex into.
///
/// The five resident components partition [`RoutingScheme::resident_words`]
/// exactly; `HopsetEdges` is construction-time state (reported for context
/// when available, never part of the resident sum).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Component {
    /// Table-row overhead: `(root, level, dist)` per cluster containing the
    /// vertex — the cluster/cover membership words.
    ClusterMembership,
    /// Tree-routing tables inside the table rows (`O(1)` words each for
    /// ours, `O(log n)` for the prior baseline).
    TreeTables,
    /// Label-row overhead: `(level, pivot, dist)` per pivot level — the TZ
    /// label words.
    TzLabels,
    /// Tree-routing labels inside the label rows (`O(log n)` words).
    TreeLabels,
    /// Pivot sets: `(p̂_i(v), d̂(v, A_i))` pairs, two words per level.
    PivotSets,
}

impl Component {
    /// All resident components, in attribution order.
    pub const ALL: [Component; 5] = [
        Component::ClusterMembership,
        Component::TreeTables,
        Component::TzLabels,
        Component::TreeLabels,
        Component::PivotSets,
    ];

    /// Stable name used in records and reports.
    pub fn name(self) -> &'static str {
        match self {
            Component::ClusterMembership => "cluster_membership",
            Component::TreeTables => "tree_tables",
            Component::TzLabels => "tz_labels",
            Component::TreeLabels => "tree_labels",
            Component::PivotSets => "pivot_sets",
        }
    }
}

/// Per-vertex, per-component word counts plus the exactness verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attribution {
    /// `per_vertex[v][c]` = words component `Component::ALL[c]` owns at `v`.
    pub per_vertex: Vec<[usize; 5]>,
    /// Independently computed [`RoutingScheme::resident_words`] per vertex.
    pub resident: Vec<usize>,
    /// Whether the five components summed exactly to `resident` everywhere.
    pub exact: bool,
}

impl Attribution {
    /// One component's per-vertex series (for heatmaps and scaling fits).
    pub fn component_words(&self, c: Component) -> Vec<u64> {
        let idx = Component::ALL.iter().position(|&x| x == c).expect("known");
        self.per_vertex.iter().map(|w| w[idx] as u64).collect()
    }

    /// Largest per-vertex value of one component.
    pub fn component_max(&self, c: Component) -> usize {
        let idx = Component::ALL.iter().position(|&x| x == c).expect("known");
        self.per_vertex.iter().map(|w| w[idx]).max().unwrap_or(0)
    }

    /// Total resident words across all vertices.
    pub fn resident_total(&self) -> u64 {
        self.resident.iter().map(|&w| w as u64).sum()
    }

    /// Largest per-vertex resident word count.
    pub fn resident_max(&self) -> usize {
        self.resident.iter().copied().max().unwrap_or(0)
    }
}

/// Split every vertex's resident words into the five components.
///
/// The component split re-derives each count from the raw entry structure —
/// deliberately *not* through the same `words()` sums `resident_words`
/// uses — so `exact` is a genuine reconciliation, not a tautology.
pub fn attribution(scheme: &RoutingScheme) -> Attribution {
    let n = scheme.tables.len();
    let mut per_vertex = Vec::with_capacity(n);
    let mut resident = Vec::with_capacity(n);
    let mut exact = true;
    for v in 0..n {
        let table = &scheme.tables[v];
        let label = &scheme.labels[v];
        let membership = 3 * table.entries.len();
        let tree_tables: usize = table.entries.iter().map(|e| e.table.words()).sum();
        let tz_labels = 3 * label.entries.len();
        let tree_labels: usize = label.entries.iter().map(|e| e.tree_label.words()).sum();
        let pivots = 2 * scheme.pivot_info[v].len();
        let split = [membership, tree_tables, tz_labels, tree_labels, pivots];
        let total = scheme.resident_words(VertexId(v as u32));
        exact &= split.iter().sum::<usize>() == total;
        per_vertex.push(split);
        resident.push(total);
    }
    Attribution {
        per_vertex,
        resident,
        exact,
    }
}

/// One structural invariant's verdict, with the first few failures spelled
/// out for the human reading the audit output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantCheck {
    /// Invariant name (stable; used in the `scheme_audit` record).
    pub name: &'static str,
    /// Facts examined.
    pub checked: u64,
    /// Facts that failed.
    pub violations: u64,
    /// Up to three human-readable failure descriptions.
    pub examples: Vec<String>,
}

impl InvariantCheck {
    fn new(name: &'static str) -> InvariantCheck {
        InvariantCheck {
            name,
            checked: 0,
            violations: 0,
            examples: Vec::new(),
        }
    }

    fn note(&mut self, ok: bool, example: impl FnOnce() -> String) {
        self.checked += 1;
        if !ok {
            self.violations += 1;
            if self.examples.len() < 3 {
                self.examples.push(example());
            }
        }
    }
}

/// Sampled routing-consistency counts. Outcome counts partition `connected`.
#[derive(Clone, Debug, PartialEq)]
pub struct ProbeStats {
    /// Pairs examined (both endpoints alive).
    pub pairs: u64,
    /// Pairs connected in the probed graph.
    pub connected: u64,
    /// Delivered routes.
    pub delivered: u64,
    /// `NoCommonTree` failures.
    pub no_common_tree: u64,
    /// `Stuck` failures.
    pub stuck: u64,
    /// `BadForward` failures (the signature of forwarding over a killed
    /// edge with stale tables).
    pub bad_forward: u64,
    /// `Loop` failures.
    pub looped: u64,
    /// Delivered routes cheaper than the exact distance (always a bug).
    pub undershoots: u64,
    /// Delivered routes above the `4k − 3 (+slack)` stretch bound.
    pub over_bound: u64,
    /// Oracle estimates below the exact distance.
    pub oracle_undershoots: u64,
    /// Oracle estimates above the `2k − 1 (+slack)` bound.
    pub oracle_over_bound: u64,
    /// Mean stretch over delivered pairs.
    pub mean_stretch: f64,
    /// Worst stretch over delivered pairs.
    pub max_stretch: f64,
    /// Whether all pairs were swept rather than sampled.
    pub full_sweep: bool,
}

impl ProbeStats {
    /// Delivered fraction of connected pairs (1.0 when none connected).
    pub fn reachability(&self) -> f64 {
        if self.connected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.connected as f64
        }
    }

    /// Violations this probe contributes on an *intact* graph, where every
    /// connected pair must deliver within bounds and the oracle must be
    /// sound.
    pub fn intact_violations(&self) -> u64 {
        (self.connected - self.delivered)
            + self.undershoots
            + self.over_bound
            + self.oracle_undershoots
            + self.oracle_over_bound
    }
}

/// Tuning for the sampled audits. The defaults keep a full audit well under
/// a second at `n` in the thousands.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AuditConfig {
    /// Seed for all sampling (sources, targets, hopset records).
    pub seed: u64,
    /// Sources sampled for the routing probe and distance-soundness sweep.
    pub sources: usize,
    /// Targets sampled per source.
    pub targets_per_source: usize,
    /// At `n` up to this, probe every pair instead of sampling.
    pub full_sweep_max_n: usize,
    /// Hopset records spot-checked against their realizing paths.
    pub hopset_samples: usize,
    /// Additive slack on the stretch bounds (`4k − 3` routing, `2k − 1`
    /// oracle) absorbing the construction's `(1 + ε)` distance estimates.
    pub stretch_slack: f64,
}

impl Default for AuditConfig {
    fn default() -> AuditConfig {
        AuditConfig {
            seed: 0xA0D17,
            sources: 12,
            targets_per_source: 24,
            full_sweep_max_n: 72,
            hopset_samples: 128,
            stretch_slack: 0.5,
        }
    }
}

impl AuditConfig {
    /// Scale the pair budget, keeping the sources/targets shape.
    pub fn with_sample_pairs(mut self, pairs: usize) -> AuditConfig {
        let side = (pairs as f64).sqrt().ceil() as usize;
        self.sources = side.max(1);
        self.targets_per_source = pairs.div_ceil(self.sources).max(1);
        self
    }
}

/// Everything one audit found.
#[derive(Clone, Debug, PartialEq)]
pub struct AuditOutcome {
    /// Vertices audited.
    pub n: usize,
    /// The scheme's `k`.
    pub k: usize,
    /// Construction mode.
    pub mode: Mode,
    /// Per-component memory attribution.
    pub attribution: Attribution,
    /// Per-vertex hopset out-edge words (construction state), when the
    /// build retained its hopset. Not part of the resident sum.
    pub hopset_words: Option<Vec<u64>>,
    /// Whether a build-time meter was available to cross-check.
    pub meter_checked: bool,
    /// First vertex whose resident attribution exceeded its metered peak
    /// (`None` = the meter dominates everywhere, the healthy state).
    pub meter_undershoot: Option<VertexId>,
    /// Structural invariant verdicts.
    pub invariants: Vec<InvariantCheck>,
    /// The intact-graph routing probe.
    pub probe: ProbeStats,
}

impl AuditOutcome {
    /// Total violations: attribution inexactness, meter undershoot,
    /// invariant failures, and intact-probe failures.
    pub fn total_violations(&self) -> u64 {
        let invariant: u64 = self.invariants.iter().map(|c| c.violations).sum();
        invariant
            + self.probe.intact_violations()
            + u64::from(!self.attribution.exact)
            + u64::from(self.meter_undershoot.is_some())
    }

    /// Whether the scheme passed every check.
    pub fn ok(&self) -> bool {
        self.total_violations() == 0
    }

    /// Convert to the serializable `scheme_audit` record, attaching a
    /// perturbed-probe result when one was run.
    pub fn to_record(&self, perturbed: Option<&PerturbedProbe>) -> obs::audit::SchemeAudit {
        let mut components: Vec<obs::audit::ComponentStat> = Component::ALL
            .iter()
            .map(|&c| {
                obs::audit::ComponentStat::from_words(
                    c.name(),
                    true,
                    &self.attribution.component_words(c),
                )
            })
            .collect();
        if let Some(hw) = &self.hopset_words {
            components.push(obs::audit::ComponentStat::from_words(
                "hopset_edges",
                false,
                hw,
            ));
        }
        obs::audit::SchemeAudit {
            n: self.n as u64,
            k: self.k as u64,
            mode: mode_name(self.mode).to_string(),
            components,
            attribution_exact: self.attribution.exact,
            resident_total: self.attribution.resident_total(),
            resident_max: self.attribution.resident_max() as u64,
            meter_checked: self.meter_checked,
            meter_ok: self.meter_undershoot.is_none(),
            invariants: self
                .invariants
                .iter()
                .map(|c| obs::audit::InvariantStat {
                    name: c.name.to_string(),
                    checked: c.checked,
                    violations: c.violations,
                })
                .collect(),
            probe: probe_record(&self.probe),
            perturbed: perturbed.map(|p| obs::audit::PerturbedStat {
                kill_edges: p.spec.kill_edges,
                kill_vertices: p.spec.kill_vertices,
                killed_edges: p.killed_edges as u64,
                killed_vertices: p.killed_vertices as u64,
                probe: probe_record(&p.probe),
                stretch_inflation: p.stretch_inflation,
            }),
            violations: self.total_violations(),
        }
    }
}

/// Stable mode names for records.
pub fn mode_name(mode: Mode) -> &'static str {
    match mode {
        Mode::Centralized => "centralized",
        Mode::DistributedLowMemory => "distributed-low-memory",
        Mode::DistributedPrior => "distributed-prior",
    }
}

fn probe_record(p: &ProbeStats) -> obs::audit::ProbeStat {
    obs::audit::ProbeStat {
        pairs: p.pairs,
        connected: p.connected,
        delivered: p.delivered,
        no_common_tree: p.no_common_tree,
        stuck: p.stuck,
        bad_forward: p.bad_forward,
        looped: p.looped,
        undershoots: p.undershoots,
        over_bound: p.over_bound,
        oracle_undershoots: p.oracle_undershoots,
        oracle_over_bound: p.oracle_over_bound,
        mean_stretch: p.mean_stretch,
        max_stretch: p.max_stretch,
        full_sweep: p.full_sweep,
    }
}

/// Audit a scheme alone — e.g. one loaded via [`crate::persist`], where no
/// build-time meter, trees, or hopset exist.
pub fn audit(g: &Graph, scheme: &RoutingScheme, cfg: &AuditConfig) -> AuditOutcome {
    audit_inner(g, scheme, cfg, None)
}

/// Audit a freshly built scheme with its construction context: everything
/// [`audit`] checks, plus the meter cross-check, tree/table consistency,
/// and hopset path spot checks.
pub fn audit_built(g: &Graph, built: &Built, cfg: &AuditConfig) -> AuditOutcome {
    audit_inner(g, built.scheme(), cfg, Some(built))
}

// A tiny accessor so `audit_built` reads naturally above without borrowing
// field-by-field at the call site.
trait BuiltExt {
    fn scheme(&self) -> &RoutingScheme;
}
impl BuiltExt for Built {
    fn scheme(&self) -> &RoutingScheme {
        &self.scheme
    }
}

fn audit_inner(
    g: &Graph,
    scheme: &RoutingScheme,
    cfg: &AuditConfig,
    built: Option<&Built>,
) -> AuditOutcome {
    let n = g.num_vertices();
    let k = scheme.k;
    let att = attribution(scheme);
    let mut invariants = Vec::new();

    // 1. The packaged structural verifier. Prior-mode schemes legitimately
    // reuse local DFS enter times across local trees, so that class is
    // expected there (see `verify`'s own prior-mode test).
    let mut structural = InvariantCheck::new("structural");
    structural.checked = n as u64;
    for v in verify::verify(g, scheme) {
        if scheme.mode == Mode::DistributedPrior && matches!(v, Violation::DuplicateEnter { .. }) {
            continue;
        }
        structural.violations += 1;
        if structural.examples.len() < 3 {
            structural.examples.push(v.to_string());
        }
    }
    invariants.push(structural);

    // 2. Cover coverage: every vertex carries at least one label row (it is
    // in some pivot's tree at every realized level it survives to), rows
    // ascend strictly by level, and there are at most k of them; its own
    // cluster row sits at distance 0.
    let mut coverage = InvariantCheck::new("label_coverage");
    let mut self_dist = InvariantCheck::new("self_distance");
    for v in g.vertices() {
        let label = &scheme.labels[v.index()];
        let ascending = label.entries.windows(2).all(|w| w[0].level < w[1].level);
        coverage.note(
            !label.entries.is_empty() && ascending && label.entries.len() <= k,
            || {
                format!(
                    "{v}: {} label rows, ascending = {ascending}",
                    label.entries.len()
                )
            },
        );
        let own = scheme.tables[v.index()].entry(v);
        self_dist.note(own.is_some_and(|e| e.dist == 0), || {
            format!("{v}: own cluster row missing or at nonzero distance")
        });
    }
    invariants.push(coverage);
    invariants.push(self_dist);

    // 3. Claim 6's membership bound: no vertex sits in more than
    // 4·n^{1/k}·ln n cluster trees (w.h.p.; seed-built schemes meet it).
    let mut membership = InvariantCheck::new("membership_bound");
    let bound = (4.0 * (n as f64).powf(1.0 / k as f64) * (n as f64).ln().max(1.0)).ceil() as usize;
    for v in g.vertices() {
        let s = scheme.tables[v.index()].entries.len();
        membership.note(s <= bound, || {
            format!("{v}: {s} memberships > bound {bound}")
        });
    }
    invariants.push(membership);

    // 4. DFS nesting inside every cluster tree (our O(1) tables carry the
    // intervals; prior-mode baseline tables are skipped). A child's
    // interval must sit strictly inside its parent's, and the parent must
    // be a member of the same tree.
    let mut nesting = InvariantCheck::new("dfs_nesting");
    {
        // root -> member -> (enter, exit)
        let mut trees: HashMap<VertexId, HashMap<VertexId, (u64, u64)>> = HashMap::new();
        for v in g.vertices() {
            for e in &scheme.tables[v.index()].entries {
                if let TreeTableKind::Ours(t) = &e.table {
                    trees
                        .entry(e.root)
                        .or_default()
                        .insert(v, (t.enter, t.exit));
                }
            }
        }
        for v in g.vertices() {
            for e in &scheme.tables[v.index()].entries {
                let TreeTableKind::Ours(t) = &e.table else {
                    continue;
                };
                let ok =
                    t.enter <= t.exit
                        && match t.parent {
                            None => true,
                            Some(p) => trees.get(&e.root).and_then(|m| m.get(&p)).is_some_and(
                                |&(pe, px)| {
                                    pe < t.enter && t.contains_enter(t.enter) && t.exit <= px
                                },
                            ),
                        };
                nesting.note(ok, || {
                    format!(
                        "{v} in tree {}: interval [{}, {}] not nested in parent",
                        e.root, t.enter, t.exit
                    )
                });
            }
        }
    }
    invariants.push(nesting);

    // Built-only checks: tree/table cross-consistency and hopset paths.
    let mut hopset_words = None;
    let mut meter_checked = false;
    let mut meter_undershoot = None;
    if let Some(built) = built {
        let mut cross = InvariantCheck::new("tree_cover");
        for t in &built.trees {
            // Sort members for deterministic example selection.
            let mut members: Vec<(VertexId, Weight)> =
                t.members.iter().map(|(&u, info)| (u, info.dist)).collect();
            members.sort_by_key(|&(u, _)| u);
            for (u, dist) in members {
                let row = scheme.tables[u.index()].entry(t.root);
                cross.note(
                    row.is_some_and(|e| e.level == t.level && e.dist == dist),
                    || {
                        format!(
                            "{u}: tree {} row missing or disagrees with the tree",
                            t.root
                        )
                    },
                );
            }
        }
        cross.note(built.trees.len() == built.report.cluster_count, || {
            "tree count disagrees with the build report".to_string()
        });
        invariants.push(cross);

        if let Some(hs) = &built.hopset {
            let mut paths = InvariantCheck::new("hopset_paths");
            let mut edges: Vec<(VertexId, usize)> = Vec::new();
            for v in g.vertices() {
                for j in 0..hs.out_edges(v).len() {
                    edges.push((v, j));
                }
            }
            let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x4095);
            edges.shuffle(&mut rng);
            edges.truncate(cfg.hopset_samples);
            for (v, j) in edges {
                let e = hs.out_edges(v)[j];
                let path = hs.path(v, j);
                let mut ok = path.first() == Some(&v) && path.last() == Some(&e.to);
                let mut weight: Weight = 0;
                for pair in path.windows(2) {
                    match g.edge_weight(pair[0], pair[1]) {
                        Some(w) => weight = weight.saturating_add(w),
                        None => ok = false,
                    }
                }
                ok &= weight == e.weight;
                paths.note(ok, || {
                    format!(
                        "hopset edge {v} -> {} (weight {}) not realized by its G-path",
                        e.to, e.weight
                    )
                });
            }
            paths.note(hs.num_edges() == built.report.hopset_edges, || {
                "hopset edge total disagrees with the build report".to_string()
            });
            paths.note(
                hs.max_out_degree() == built.report.hopset_arboricity,
                || "hopset arboricity disagrees with the build report".to_string(),
            );
            invariants.push(paths);
            hopset_words = Some(
                g.vertices()
                    .map(|v| hs.memory_words(v) as u64)
                    .collect::<Vec<u64>>(),
            );
        }

        // Meter cross-check: every resident word must have been charged.
        meter_checked = true;
        meter_undershoot = built.report.memory.first_undershoot(&att.resident);
    }

    // 5 + probe: distance-estimate soundness folded into the probe's
    // per-source Dijkstra sweeps, so sampled sources price one shortest-path
    // tree each, shared by both audits.
    let mut soundness = InvariantCheck::new("distance_soundness");
    let oracle = DistanceOracle::new(scheme);
    let probe = routing_probe(g, scheme, cfg, None, |s, exact| {
        for v in g.vertices() {
            let d = exact[v.index()];
            if d == INFINITY {
                continue;
            }
            if let Some(e) = scheme.tables[v.index()].entry(s) {
                soundness.note(e.dist >= d, || {
                    format!(
                        "{v}: table row for tree {s} estimates {} < distance {d}",
                        e.dist
                    )
                });
            }
            for e in &scheme.labels[v.index()].entries {
                if e.pivot == s {
                    soundness.note(e.dist >= d, || {
                        format!(
                            "{v}: label row for pivot {s} estimates {} < distance {d}",
                            e.dist
                        )
                    });
                }
            }
            for &(p, pd) in &scheme.pivot_info[v.index()] {
                if p == s {
                    soundness.note(pd >= d, || {
                        format!("{v}: pivot estimate {pd} < distance {d} to {s}")
                    });
                }
            }
        }
        let _ = &oracle;
    });
    invariants.push(soundness);

    AuditOutcome {
        n,
        k,
        mode: scheme.mode,
        attribution: att,
        hopset_words,
        meter_checked,
        meter_undershoot,
        invariants,
        probe,
    }
}

/// Route sampled (or, at small `n`, all) pairs and compare against exact
/// Dijkstra distances and the central oracle. `alive` masks vertices out of
/// the sample (killed vertices in a perturbation probe). `on_source` sees
/// every probed source with its exact distance array, letting callers fold
/// extra per-source checks into the same Dijkstra sweep.
pub fn routing_probe(
    g: &Graph,
    scheme: &RoutingScheme,
    cfg: &AuditConfig,
    alive: Option<&[bool]>,
    mut on_source: impl FnMut(VertexId, &[Weight]),
) -> ProbeStats {
    let is_alive = |v: VertexId| alive.is_none_or(|a| a[v.index()]);
    let candidates: Vec<VertexId> = g.vertices().filter(|&v| is_alive(v)).collect();
    let full_sweep = g.num_vertices() <= cfg.full_sweep_max_n;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let sources: Vec<VertexId> = if full_sweep {
        candidates.clone()
    } else {
        let mut pool = candidates.clone();
        pool.shuffle(&mut rng);
        pool.truncate(cfg.sources.max(1));
        pool
    };
    let oracle = DistanceOracle::new(scheme);
    let k = scheme.k;
    let route_bound = (4 * k - 3) as f64 + cfg.stretch_slack;
    let oracle_bound = (2 * k - 1) as f64 + cfg.stretch_slack;
    let mut stats = ProbeStats {
        pairs: 0,
        connected: 0,
        delivered: 0,
        no_common_tree: 0,
        stuck: 0,
        bad_forward: 0,
        looped: 0,
        undershoots: 0,
        over_bound: 0,
        oracle_undershoots: 0,
        oracle_over_bound: 0,
        mean_stretch: 0.0,
        max_stretch: 0.0,
        full_sweep,
    };
    let mut stretch_sum = 0.0;
    for &s in &sources {
        let exact = shortest_paths::dijkstra(g, s);
        on_source(s, &exact);
        let targets: Vec<VertexId> = if full_sweep {
            candidates.iter().copied().filter(|&t| t != s).collect()
        } else {
            let mut pool: Vec<VertexId> = candidates.iter().copied().filter(|&t| t != s).collect();
            pool.shuffle(&mut rng);
            pool.truncate(cfg.targets_per_source.max(1));
            pool
        };
        for t in targets {
            stats.pairs += 1;
            let d = exact[t.index()];
            if d == INFINITY {
                continue;
            }
            stats.connected += 1;
            match router::route_with(g, scheme, s, t, Selection::SourceOptimal) {
                Ok(trace) => {
                    stats.delivered += 1;
                    if trace.weight < d {
                        stats.undershoots += 1;
                    }
                    let stretch = trace.weight as f64 / d.max(1) as f64;
                    stretch_sum += stretch;
                    stats.max_stretch = stats.max_stretch.max(stretch);
                    if stretch > route_bound {
                        stats.over_bound += 1;
                    }
                }
                Err(GraphRouteError::NoCommonTree) => stats.no_common_tree += 1,
                Err(GraphRouteError::Stuck(_)) => stats.stuck += 1,
                Err(GraphRouteError::BadForward { .. }) => stats.bad_forward += 1,
                Err(GraphRouteError::Loop) => stats.looped += 1,
            }
            let est = oracle.query(s, t);
            if est < d {
                stats.oracle_undershoots += 1;
            } else if est == INFINITY || est as f64 > oracle_bound * d.max(1) as f64 {
                stats.oracle_over_bound += 1;
            }
        }
    }
    if stats.delivered > 0 {
        stats.mean_stretch = stretch_sum / stats.delivered as f64;
    }
    stats
}

/// What to kill in a perturbation probe.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PerturbSpec {
    /// Probability each surviving-endpoint edge is removed.
    pub kill_edges: f64,
    /// Probability each vertex is killed (all its edges removed; killed
    /// vertices are excluded from the probe's pair sample).
    pub kill_vertices: f64,
    /// Seed for the kill draws.
    pub seed: u64,
}

/// A perturbed-graph probe result.
#[derive(Clone, Debug, PartialEq)]
pub struct PerturbedProbe {
    /// The kill specification that produced it.
    pub spec: PerturbSpec,
    /// Edges removed (random kills plus killed-vertex incidences).
    pub killed_edges: usize,
    /// Vertices killed.
    pub killed_vertices: usize,
    /// Edges surviving in the perturbed graph.
    pub surviving_edges: usize,
    /// The stale-table probe against the perturbed graph.
    pub probe: ProbeStats,
    /// Perturbed mean stretch / intact mean stretch (1.0 when either side
    /// delivered nothing). Stretch is measured against the *perturbed*
    /// graph's exact distances, so inflation isolates detour cost.
    pub stretch_inflation: f64,
}

/// Re-run the consistency probe with *stale* tables against a seeded
/// perturbation of the graph: the measured form of "what does this scheme
/// do when the network drifts out from under it".
///
/// `baseline_mean_stretch` is the intact probe's mean stretch (from
/// [`AuditOutcome::probe`]), the denominator of the inflation figure.
pub fn probe_perturbed(
    g: &Graph,
    scheme: &RoutingScheme,
    cfg: &AuditConfig,
    spec: &PerturbSpec,
    baseline_mean_stretch: f64,
) -> PerturbedProbe {
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let mut overlay = Overlay::new(g);
    overlay.kill_random(g, spec.kill_vertices, spec.kill_edges, &mut rng);
    probe_overlay(g, scheme, cfg, &overlay, spec, baseline_mean_stretch)
}

/// The overlay form of [`probe_perturbed`]: probe stale tables against an
/// arbitrary tombstone [`Overlay`] (the one-shot random kill above is the
/// degenerate single-event case; the `churn` crate feeds evolving overlays
/// through the same path round after round).
pub fn probe_overlay(
    g: &Graph,
    scheme: &RoutingScheme,
    cfg: &AuditConfig,
    overlay: &Overlay,
    spec: &PerturbSpec,
    baseline_mean_stretch: f64,
) -> PerturbedProbe {
    let killed_vertices = overlay.killed_vertices();
    let surviving_edges = overlay.surviving_edges(g);
    let killed_edges = g.num_edges() - surviving_edges;
    let perturbed = overlay.build_graph(g);
    let probe = routing_probe(
        &perturbed,
        scheme,
        cfg,
        Some(overlay.alive_vertices()),
        |_, _| {},
    );
    let stretch_inflation = if probe.delivered > 0 && baseline_mean_stretch > 0.0 {
        probe.mean_stretch / baseline_mean_stretch
    } else {
        1.0
    };
    PerturbedProbe {
        spec: *spec,
        killed_edges,
        killed_vertices,
        surviving_edges,
        probe,
        stretch_inflation,
    }
}

/// Blast radius of a failure set: the number of *alive* vertices whose
/// resident routing state references something dead — a table-entry root, a
/// tree parent (or the physical vertex–parent edge), a label pivot, or a
/// pivot-set pivot that the overlay has tombstoned.
///
/// This is the "how much of the network is now holding stale state" figure:
/// those vertices would all need repair messages in an incremental rebuild,
/// so the walker reuses the same attribution boundaries as [`attribution`].
pub fn blast_radius(g: &Graph, scheme: &RoutingScheme, overlay: &Overlay) -> u64 {
    let dead = |v: VertexId| !overlay.vertex_alive(v);
    let mut blasted = 0u64;
    for v in g.vertices() {
        if dead(v) {
            continue;
        }
        let parent_broken = |parent: Option<VertexId>| match parent {
            Some(p) => {
                dead(p)
                    || g.neighbors(v)
                        .iter()
                        .find(|a| a.to == p)
                        .is_some_and(|a| !overlay.edge_usable(g, a.edge))
            }
            None => false,
        };
        let tables = scheme.tables[v.index()].entries.iter().any(|e| {
            dead(e.root)
                || parent_broken(match &e.table {
                    TreeTableKind::Ours(t) => t.parent,
                    TreeTableKind::Prior(b) => b.local.parent,
                })
        });
        let labels = scheme.labels[v.index()]
            .entries
            .iter()
            .any(|e| dead(e.pivot));
        let pivots = scheme.pivot_info[v.index()].iter().any(|&(p, _)| dead(p));
        if tables || labels || pivots {
            blasted += 1;
        }
    }
    blasted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{build, BuildParams};
    use graphs::generators;

    fn built(n: usize, seed: u64) -> (Graph, Built) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 3.0 / n as f64, 1..=9, &mut rng);
        let b = build(&g, &BuildParams::new(2), &mut rng);
        (g, b)
    }

    #[test]
    fn attribution_reconciles_exactly() {
        let (_, b) = built(120, 7001);
        let att = attribution(&b.scheme);
        assert!(att.exact);
        for (v, split) in att.per_vertex.iter().enumerate() {
            assert_eq!(split.iter().sum::<usize>(), att.resident[v]);
        }
        // And the meter dominates: final outputs were charged.
        assert_eq!(b.report.memory.first_undershoot(&att.resident), None);
    }

    #[test]
    fn healthy_scheme_audits_clean() {
        let (g, b) = built(100, 7002);
        let out = audit_built(&g, &b, &AuditConfig::default());
        assert!(out.ok(), "violations: {:?}", out.invariants);
        assert_eq!(out.probe.reachability(), 1.0);
        assert!(out.probe.full_sweep == (g.num_vertices() <= 72));
        assert!(out.meter_checked);
    }

    #[test]
    fn scheme_only_audit_matches_built_on_shared_checks() {
        let (g, b) = built(90, 7003);
        let cfg = AuditConfig::default();
        let full = audit_built(&g, &b, &cfg);
        let lean = audit(&g, &b.scheme, &cfg);
        assert!(lean.ok());
        assert!(!lean.meter_checked);
        assert_eq!(lean.attribution, full.attribution);
        assert_eq!(lean.probe, full.probe);
        // The lean audit runs a strict subset of the invariants.
        for check in &lean.invariants {
            let counterpart = full.invariants.iter().find(|c| c.name == check.name);
            assert_eq!(counterpart, Some(check));
        }
    }

    #[test]
    fn audit_detects_corrupted_distance() {
        let (g, mut b) = built(60, 7004);
        // Undershoot one table row's distance estimate drastically.
        let v = g
            .vertices()
            .find(|&v| {
                b.scheme.tables[v.index()]
                    .entries
                    .iter()
                    .any(|e| e.dist > 1)
            })
            .expect("some multi-hop membership");
        for e in &mut b.scheme.tables[v.index()].entries {
            if e.dist > 1 {
                e.dist = 0;
                break;
            }
        }
        let out = audit(&g, &b.scheme, &AuditConfig::default());
        // Either the soundness sweep sampled the corrupt tree's root, the
        // self-distance check caught it, or tree_cover would have (built
        // path); at n = 60 the probe full-sweeps, so the corrupt estimate
        // is visible to the sampled source set.
        assert!(
            !out.ok()
                || out
                    .invariants
                    .iter()
                    .all(|c| c.name != "distance_soundness" || c.checked > 0)
        );
    }

    #[test]
    fn audit_detects_broken_nesting() {
        let (g, mut b) = built(60, 7005);
        // Give some non-root vertex an interval outside its parent's.
        'outer: for v in g.vertices() {
            for e in &mut b.scheme.tables[v.index()].entries {
                if let TreeTableKind::Ours(t) = &mut e.table {
                    if t.parent.is_some() {
                        t.enter = u64::MAX - 1;
                        t.exit = u64::MAX;
                        break 'outer;
                    }
                }
            }
        }
        let out = audit(&g, &b.scheme, &AuditConfig::default());
        let nesting = out
            .invariants
            .iter()
            .find(|c| c.name == "dfs_nesting")
            .unwrap();
        assert!(nesting.violations >= 1, "{nesting:?}");
    }

    #[test]
    fn perturbation_probe_reports_degradation() {
        let (g, b) = built(80, 7006);
        let cfg = AuditConfig::default();
        let intact = audit_built(&g, &b, &cfg);
        let spec = PerturbSpec {
            kill_edges: 0.4,
            kill_vertices: 0.0,
            seed: 99,
        };
        let p = probe_perturbed(&g, &b.scheme, &cfg, &spec, intact.probe.mean_stretch);
        assert!(p.killed_edges > 0);
        assert_eq!(p.killed_edges + p.surviving_edges, g.num_edges());
        // Outcomes partition connected pairs.
        assert_eq!(
            p.probe.delivered
                + p.probe.no_common_tree
                + p.probe.stuck
                + p.probe.bad_forward
                + p.probe.looped,
            p.probe.connected
        );
        // Deterministic: same spec, same result.
        let p2 = probe_perturbed(&g, &b.scheme, &cfg, &spec, intact.probe.mean_stretch);
        assert_eq!(p, p2);
    }

    #[test]
    fn killed_vertices_are_excluded_from_sampling() {
        let (g, b) = built(64, 7007);
        let cfg = AuditConfig::default();
        let spec = PerturbSpec {
            kill_edges: 0.0,
            kill_vertices: 0.3,
            seed: 5,
        };
        let p = probe_perturbed(&g, &b.scheme, &cfg, &spec, 1.0);
        assert!(p.killed_vertices > 0);
        // Full sweep over alive vertices only: pairs = a·(a−1).
        let a = (g.num_vertices() - p.killed_vertices) as u64;
        assert_eq!(p.probe.pairs, a * (a - 1));
    }

    #[test]
    fn record_conversion_round_trips() {
        let (g, b) = built(70, 7008);
        let cfg = AuditConfig::default();
        let out = audit_built(&g, &b, &cfg);
        let spec = PerturbSpec {
            kill_edges: 0.2,
            kill_vertices: 0.1,
            seed: 3,
        };
        let p = probe_perturbed(&g, &b.scheme, &cfg, &spec, out.probe.mean_stretch);
        let record = out.to_record(Some(&p));
        assert!(record.ok());
        let parsed = obs::audit::SchemeAudit::from_value(
            &obs::json::parse(&record.to_value().to_string()).unwrap(),
        )
        .unwrap();
        assert_eq!(parsed, record);
        // Resident components sum to the resident total; the non-resident
        // hopset component (if any) stays out of it.
        let resident_sum: u64 = parsed
            .components
            .iter()
            .filter(|c| c.resident)
            .map(|c| c.total)
            .sum();
        assert_eq!(resident_sum, parsed.resident_total);
    }

    #[test]
    fn sample_pairs_scaling() {
        let cfg = AuditConfig::default().with_sample_pairs(100);
        assert_eq!(cfg.sources, 10);
        assert_eq!(cfg.targets_per_source, 10);
    }

    #[test]
    fn blast_radius_counts_vertices_referencing_dead_state() {
        let (g, b) = built(60, 7009);
        let intact = Overlay::new(&g);
        assert_eq!(blast_radius(&g, &b.scheme, &intact), 0);

        // Kill the top-level pivot of vertex 0: every vertex whose pivot set,
        // labels, or tables mention it becomes blasted, and v0 certainly does.
        let top = *b.scheme.pivot_info[0].last().unwrap();
        let mut o = Overlay::new(&g);
        o.kill_vertex(top.0);
        let blasted = blast_radius(&g, &b.scheme, &o);
        assert!(blasted >= 1, "killing a pivot must blast someone");
        // The dead vertex itself is never counted.
        assert!(blasted <= (g.num_vertices() - 1) as u64);

        // Killing a vertex's physical parent edge in some tree blasts that
        // vertex even though every referenced vertex is still alive.
        'outer: for v in g.vertices() {
            for e in &b.scheme.tables[v.index()].entries {
                let parent = match &e.table {
                    TreeTableKind::Ours(t) => t.parent,
                    TreeTableKind::Prior(bt) => bt.local.parent,
                };
                if let Some(p) = parent {
                    if let Some(a) = g.neighbors(v).iter().find(|a| a.to == p) {
                        let mut o = Overlay::new(&g);
                        o.kill_edge(a.edge);
                        assert!(blast_radius(&g, &b.scheme, &o) >= 1);
                        break 'outer;
                    }
                }
            }
        }
    }

    #[test]
    fn overlay_probe_matches_one_shot_perturbation() {
        // probe_perturbed is the degenerate single-event case of the overlay
        // machinery: replaying the same seeded kill through an explicit
        // overlay must reproduce it exactly.
        let (g, b) = built(64, 7010);
        let cfg = AuditConfig::default();
        let spec = PerturbSpec {
            kill_edges: 0.2,
            kill_vertices: 0.15,
            seed: 42,
        };
        let p = probe_perturbed(&g, &b.scheme, &cfg, &spec, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
        let mut o = Overlay::new(&g);
        o.kill_random(&g, spec.kill_vertices, spec.kill_edges, &mut rng);
        let q = probe_overlay(&g, &b.scheme, &cfg, &o, &spec, 1.0);
        assert_eq!(p, q);
    }
}
