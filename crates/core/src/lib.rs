//! Near-optimal distributed compact routing with low memory — the paper's
//! primary contribution (Appendix B / Theorem 3).
//!
//! For a weighted `n`-vertex network of hop-diameter `D` and a parameter
//! `k > 1`, the scheme produces
//!
//! * routing **tables** of `Õ(n^{1/k})` words,
//! * **labels** of `O(k log n)` words,
//! * **stretch** at most `4k − 5 + o(1)`,
//!
//! constructible in a distributed manner in `(n^{1/2+1/k} + D) · poly(log n)`
//! rounds with only `Õ(n^{1/k})` words of memory per vertex — versus the
//! `Ω̃(√n)` memory of all prior near-optimal-time constructions.
//!
//! The pipeline (one module each):
//!
//! 1. [`hierarchy`] — sample `V = A_0 ⊇ A_1 ⊇ … ⊇ A_k = ∅`.
//! 2. [`pivots`] — per level, (approximate) distances `d̂(·, A_i)` and pivot
//!    identities: exact bounded explorations for low levels, hopset-powered
//!    Bellman–Ford (via the [`hopset`] crate) above the virtual level.
//! 3. [`clusters`] — cluster trees: exact limited explorations for levels
//!    `i < k/2` (Claims 6–8), limited hopset explorations plus path recovery
//!    for `i ≥ k/2` (approximate clusters, Claims 9–10) — all as genuine
//!    trees of `G`.
//! 4. [`scheme`] — per-tree exact routing (the Theorem-2 tree scheme from
//!    the [`tree_routing`] crate, or the prior baseline for comparison),
//!    assembled into per-vertex [`RoutingTable`]s and [`RoutingLabel`]s.
//! 5. [`router`] — the routing phase: pick a tree from the target's label,
//!    forward hop-by-hop, measure stretch.
//!
//! # Examples
//!
//! ```
//! use routing::{build, BuildParams, Mode};
//! use graphs::{generators, VertexId};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let g = generators::erdos_renyi_connected(80, 0.06, 1..=9, &mut rng);
//! let built = build(&g, &BuildParams::new(2), &mut rng);
//! let trace = routing::router::route(&g, &built.scheme, VertexId(3), VertexId(70)).unwrap();
//! assert!(trace.weight >= graphs::shortest_paths::dijkstra(&g, VertexId(3))[70]);
//! # let _ = Mode::DistributedLowMemory;
//! ```

pub mod audit;
pub mod clusters;
pub mod covers;
pub mod hierarchy;
pub mod oracle;
pub mod packet;
pub mod persist;
pub mod pivots;
pub mod router;
pub mod scheme;
pub mod sparse;
pub mod verify;

pub use scheme::{
    build, build_observed, BuildParams, BuildReport, Built, LabelEntry, Mode, RoutingLabel,
    RoutingScheme, RoutingTable, TableEntry,
};
