//! Phase-scoped run tracing for the distributed-routing stack.
//!
//! The paper's entire evaluation is measurement — rounds, words, per-vertex
//! memory — and its analysis attributes those costs to *phases*
//! (superclustering vs. interconnection, tree-cover build vs. label
//! dissemination). This crate makes that attribution empirical:
//!
//! * [`Recorder`] collects named, nestable [`SpanRecord`]s, each capturing
//!   the *delta* of [`Counters`] (rounds, messages, words, broadcasts)
//!   accrued while the span was open, plus a per-vertex peak-memory
//!   distribution snapshot ([`MemoryDist`]) at the span boundary;
//! * the engine's round loop feeds a per-round time series of
//!   [`RoundSample`]s (messages, words, max-edge-words, congestion
//!   violations) into the recorder;
//! * [`Recorder::write_report`] serializes everything as JSONL — one record
//!   per span, an optional `round_series` record, and a trailing
//!   `run_summary` record — to a path chosen by `--report <path>` or the
//!   `DRT_REPORT` environment variable (see [`cli`]);
//! * [`json`] is a dependency-free JSON writer *and* parser, so generated
//!   reports can be read back and checked (span deltas must sum to the run
//!   totals) and the bench binaries can emit their tables as JSON;
//! * [`flight`] is the forwarding-plane flight recorder: hop-by-hop
//!   [`flight::PacketTrace`]s, [`flight::EdgeLoadMap`]/
//!   [`flight::VertexLoadMap`] heatmaps, and stretch histograms, emitted
//!   into the same JSONL reports via [`Recorder::add_record`];
//! * [`metrics`] adds the wall-clock axis: monotonic [`metrics::Stopwatch`]
//!   timers (every span carries a `wall_ns` next to its simulated deltas)
//!   and [`metrics::MetricSet`] counter/gauge bags serialized as `metrics`
//!   records;
//! * [`scaling`] fits log-log growth exponents and checks them against
//!   paper-predicted ranges, turning "the shape matches the theorem" into an
//!   executable assertion;
//! * [`profile`] attributes engine wall time to round-loop phases per
//!   worker (dispatch, compute, scatter, merge, idle), exported as an
//!   `engine_profile` record and a Chrome trace-event file;
//! * [`error::ParseError`] gives every report parser typed failures
//!   carrying the record index and field name.
//!
//! A disabled recorder ([`Recorder::disabled`]) makes every operation an
//! early-returning no-op, so instrumented code paths cost nothing when
//! reporting is off.

use std::io::{self, Write as _};
use std::path::Path;

pub mod audit;
pub mod churn;
pub mod cli;
pub mod error;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod scaling;
pub mod serve;
pub mod traffic;

pub use error::ParseError;

use json::Value;

/// The additive cost counters every span attributes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Simulated CONGEST rounds.
    pub rounds: u64,
    /// Point-to-point messages.
    pub messages: u64,
    /// Words carried by those messages (where measured).
    pub words: u64,
    /// Lemma-1 broadcast phases.
    pub broadcasts: u64,
}

impl Counters {
    /// All-zero counters.
    pub const ZERO: Counters = Counters {
        rounds: 0,
        messages: 0,
        words: 0,
        broadcasts: 0,
    };

    /// Component-wise `self - earlier`, saturating at zero.
    pub fn delta_since(&self, earlier: &Counters) -> Counters {
        Counters {
            rounds: self.rounds.saturating_sub(earlier.rounds),
            messages: self.messages.saturating_sub(earlier.messages),
            words: self.words.saturating_sub(earlier.words),
            broadcasts: self.broadcasts.saturating_sub(earlier.broadcasts),
        }
    }

    /// Component-wise accumulate.
    pub fn add(&mut self, other: &Counters) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.words += other.words;
        self.broadcasts += other.broadcasts;
    }
}

/// Summary statistics of the per-vertex peak-memory distribution, in words.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MemoryDist {
    /// Smallest per-vertex peak.
    pub min: usize,
    /// Median per-vertex peak.
    pub median: usize,
    /// 99th-percentile per-vertex peak.
    pub p99: usize,
    /// Largest per-vertex peak — the paper's "memory per vertex".
    pub max: usize,
    /// Mean per-vertex peak.
    pub mean: f64,
}

impl MemoryDist {
    /// Distribution summary of `peaks` (one entry per vertex).
    pub fn from_peaks(peaks: &[usize]) -> MemoryDist {
        if peaks.is_empty() {
            return MemoryDist::default();
        }
        let mut sorted = peaks.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        MemoryDist {
            min: sorted[0],
            median: sorted[n / 2],
            p99: sorted[((n * 99) / 100).min(n - 1)],
            max: sorted[n - 1],
            mean: sorted.iter().sum::<usize>() as f64 / n as f64,
        }
    }

    fn to_value(self) -> Value {
        Value::object(vec![
            ("min", Value::from(self.min as u64)),
            ("median", Value::from(self.median as u64)),
            ("p99", Value::from(self.p99 as u64)),
            ("max", Value::from(self.max as u64)),
            ("mean", Value::from(self.mean)),
        ])
    }
}

/// One sample of the engine's per-round time series.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundSample {
    /// The round number (1-based; `init` sends land in round 0).
    pub round: u64,
    /// Messages delivered this round.
    pub messages: u64,
    /// Words delivered this round.
    pub words: u64,
    /// Worst per-edge word count observed so far in the run.
    pub max_edge_words: usize,
    /// Congestion violations recorded this round.
    pub congestion_violations: u64,
    /// Words sitting in vertex-local forwarding queues at the end of the
    /// round (store-and-forward protocols only; 0 elsewhere).
    pub queued_words: usize,
}

/// Identifies an open span; returned by [`Recorder::begin`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(usize);

impl SpanId {
    const DISABLED: SpanId = SpanId(usize::MAX);
}

/// A completed named phase with its attributed cost deltas.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// The phase name (slash-separated by convention, e.g. `hopset/L0/superclustering`).
    pub name: String,
    /// Position in begin order (also the JSONL `seq` field).
    pub seq: usize,
    /// `seq` of the enclosing span, if nested.
    pub parent: Option<usize>,
    /// Nesting depth (0 = top level).
    pub depth: usize,
    /// Counter deltas accrued while the span was open (children included).
    pub delta: Counters,
    /// Max per-vertex peak memory at span end (0 if never snapshotted).
    pub peak_memory_words: usize,
    /// Peak-memory distribution snapshot at span end, when provided.
    pub memory: Option<MemoryDist>,
    /// Wall-clock nanoseconds the span was open (monotonic; 0 until closed).
    pub wall_ns: u64,
    entry: Counters,
    entry_wall: Option<metrics::Stopwatch>,
    closed: bool,
}

/// Collects spans, counters, and the per-round time series for one run.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    enabled: bool,
    totals: Counters,
    spans: Vec<SpanRecord>,
    open: Vec<usize>,
    series: Vec<RoundSample>,
    run_memory: Option<MemoryDist>,
    records: Vec<Value>,
    started: Option<metrics::Stopwatch>,
    profile: Option<profile::EngineProfile>,
}

impl Recorder {
    /// An enabled recorder. Its wall clock starts now; the run summary's
    /// `wall_ns` covers creation to [`Recorder::write_report`].
    pub fn new() -> Recorder {
        Recorder {
            enabled: true,
            started: Some(metrics::Stopwatch::start()),
            ..Recorder::default()
        }
    }

    /// A recorder whose every operation is a no-op.
    pub fn disabled() -> Recorder {
        Recorder::default()
    }

    /// An enabled recorder if `on`, else a disabled one.
    pub fn when(on: bool) -> Recorder {
        if on {
            Recorder::new()
        } else {
            Recorder::disabled()
        }
    }

    /// Whether this recorder is collecting anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Open a named span nested under the currently open span (if any).
    pub fn begin(&mut self, name: &str) -> SpanId {
        if !self.enabled {
            return SpanId::DISABLED;
        }
        let seq = self.spans.len();
        self.spans.push(SpanRecord {
            name: name.to_string(),
            seq,
            parent: self.open.last().copied(),
            depth: self.open.len(),
            delta: Counters::ZERO,
            peak_memory_words: 0,
            memory: None,
            wall_ns: 0,
            entry: self.totals,
            entry_wall: Some(metrics::Stopwatch::start()),
            closed: false,
        });
        self.open.push(seq);
        SpanId(seq)
    }

    /// Close `id` without a memory snapshot.
    pub fn end(&mut self, id: SpanId) {
        self.end_span(id, None);
    }

    /// Close `id`, snapshotting the per-vertex peak-memory distribution.
    pub fn end_with_memory(&mut self, id: SpanId, peaks: &[usize]) {
        self.end_span(id, Some(MemoryDist::from_peaks(peaks)));
    }

    fn end_span(&mut self, id: SpanId, memory: Option<MemoryDist>) {
        if !self.enabled || id == SpanId::DISABLED {
            return;
        }
        debug_assert_eq!(
            self.open.last().copied(),
            Some(id.0),
            "spans must close innermost-first"
        );
        self.open.retain(|&s| s != id.0);
        let totals = self.totals;
        let span = &mut self.spans[id.0];
        span.delta = totals.delta_since(&span.entry);
        span.memory = memory;
        span.peak_memory_words = memory.map_or(0, |m| m.max);
        span.wall_ns = span.entry_wall.map_or(0, |sw| sw.elapsed_ns());
        span.closed = true;
    }

    /// Attribute `delta` to the currently open span(s) and the run totals.
    pub fn charge(&mut self, delta: &Counters) {
        if self.enabled {
            self.totals.add(delta);
        }
    }

    /// Attribute `r` rounds.
    pub fn charge_rounds(&mut self, r: u64) {
        if self.enabled {
            self.totals.rounds += r;
        }
    }

    /// Attribute `m` messages carrying `w` words.
    pub fn charge_messages(&mut self, m: u64, w: u64) {
        if self.enabled {
            self.totals.messages += m;
            self.totals.words += w;
        }
    }

    /// Attribute one broadcast phase.
    pub fn charge_broadcast(&mut self) {
        if self.enabled {
            self.totals.broadcasts += 1;
        }
    }

    /// Append one engine round to the time series (totals are untouched —
    /// engine costs reach the totals through ledger charges).
    pub fn record_round(&mut self, sample: RoundSample) {
        if self.enabled {
            self.series.push(sample);
        }
    }

    /// Record the end-of-run peak-memory distribution.
    pub fn set_run_memory(&mut self, peaks: &[usize]) {
        if self.enabled {
            self.run_memory = Some(MemoryDist::from_peaks(peaks));
        }
    }

    /// Append a free-form record (e.g. a [`flight::PacketTrace`] or
    /// [`flight::EdgeLoadMap`] serialization) to the report. Records are
    /// written after the spans and round series, before the summary.
    pub fn add_record(&mut self, record: Value) {
        if self.enabled {
            self.records.push(record);
        }
    }

    /// Records appended via [`Recorder::add_record`], in order.
    pub fn records(&self) -> &[Value] {
        &self.records
    }

    /// Ask engine runs traced through this recorder to profile their
    /// round loop (see [`profile::EngineProfile`]). No-op when the
    /// recorder is disabled, so profiling inherits the no-cost-when-off
    /// guarantee.
    pub fn enable_profiling(&mut self) {
        if self.enabled && self.profile.is_none() {
            self.profile = Some(profile::EngineProfile::new(0));
        }
    }

    /// Whether engine runs should profile their round loop.
    pub fn profiling(&self) -> bool {
        self.profile.is_some()
    }

    /// The shared timeline origin for profile samples: the recorder's
    /// own start stopwatch, so samples from successive engine runs land
    /// on one timeline. `None` unless profiling is enabled.
    pub fn profile_epoch(&self) -> Option<metrics::Stopwatch> {
        if self.profile.is_some() {
            self.started
        } else {
            None
        }
    }

    /// Fold one engine run's profile into the recorder's accumulator.
    pub fn absorb_profile(&mut self, run: &profile::EngineProfile) {
        if let Some(p) = self.profile.as_mut() {
            p.absorb(run);
        }
    }

    /// The accumulated engine profile, when profiling is enabled and at
    /// least one run was absorbed.
    pub fn profile(&self) -> Option<&profile::EngineProfile> {
        self.profile.as_ref().filter(|p| p.runs > 0)
    }

    /// Cumulative counters charged so far.
    pub fn totals(&self) -> Counters {
        self.totals
    }

    /// All spans in begin order (open spans have zero deltas until closed).
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// The per-round time series.
    pub fn series(&self) -> &[RoundSample] {
        &self.series
    }

    /// Serialize the run as JSONL: one `span` record per closed span (begin
    /// order), one `round_series` record when the engine hook fired, any
    /// records appended via [`Recorder::add_record`] (packet traces, load
    /// heatmaps, histograms), and a trailing `run_summary` carrying the
    /// totals plus `extra` fields.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing `path`.
    pub fn write_report(
        &self,
        path: impl AsRef<Path>,
        run_name: &str,
        extra: &[(&str, Value)],
    ) -> io::Result<()> {
        let mut out = io::BufWriter::new(std::fs::File::create(path)?);
        for span in self.spans.iter().filter(|s| s.closed) {
            let mut fields = vec![
                ("type", Value::from("span")),
                ("seq", Value::from(span.seq as u64)),
                ("name", Value::from(span.name.as_str())),
                ("depth", Value::from(span.depth as u64)),
                (
                    "parent",
                    span.parent.map_or(Value::Null, |p| Value::from(p as u64)),
                ),
                ("rounds", Value::from(span.delta.rounds)),
                ("messages", Value::from(span.delta.messages)),
                ("words", Value::from(span.delta.words)),
                ("broadcasts", Value::from(span.delta.broadcasts)),
                (
                    "peak_memory_words",
                    Value::from(span.peak_memory_words as u64),
                ),
                ("wall_ns", Value::from(span.wall_ns)),
            ];
            if let Some(m) = span.memory {
                fields.push(("memory", m.to_value()));
            }
            writeln!(out, "{}", Value::object(fields))?;
        }
        if !self.series.is_empty() {
            let samples: Vec<Value> = self
                .series
                .iter()
                .map(|s| {
                    Value::object(vec![
                        ("round", Value::from(s.round)),
                        ("messages", Value::from(s.messages)),
                        ("words", Value::from(s.words)),
                        ("max_edge_words", Value::from(s.max_edge_words as u64)),
                        (
                            "congestion_violations",
                            Value::from(s.congestion_violations),
                        ),
                        ("queued_words", Value::from(s.queued_words as u64)),
                    ])
                })
                .collect();
            let record = Value::object(vec![
                ("type", Value::from("round_series")),
                ("samples", Value::Array(samples)),
            ]);
            writeln!(out, "{record}")?;
        }
        for record in &self.records {
            writeln!(out, "{record}")?;
        }
        if let Some(p) = self.profile() {
            writeln!(out, "{}", p.summary().to_value())?;
        }
        let peak = self
            .run_memory
            .map(|m| m.max)
            .or_else(|| self.spans.iter().map(|s| s.peak_memory_words).max())
            .unwrap_or(0);
        let mut fields = vec![
            ("type", Value::from("run_summary")),
            ("name", Value::from(run_name)),
            ("rounds", Value::from(self.totals.rounds)),
            ("messages", Value::from(self.totals.messages)),
            ("words", Value::from(self.totals.words)),
            ("broadcasts", Value::from(self.totals.broadcasts)),
            ("peak_memory_words", Value::from(peak as u64)),
            (
                "spans",
                Value::from(self.spans.iter().filter(|s| s.closed).count() as u64),
            ),
            ("records", Value::from(self.records.len() as u64)),
            (
                "wall_ns",
                Value::from(self.started.map_or(0, |sw| sw.elapsed_ns())),
            ),
        ];
        if let Some(m) = self.run_memory {
            fields.push(("memory", m.to_value()));
        }
        for (k, v) in extra {
            fields.push((k, v.clone()));
        }
        writeln!(out, "{}", Value::object(fields))?;
        out.flush()
    }
}

/// Parse a JSONL report back into one [`json::Value`] per line.
///
/// # Errors
///
/// Returns a [`ParseError`] carrying the zero-based record index of the
/// first I/O or parse failure.
pub fn read_report(path: impl AsRef<Path>) -> Result<Vec<Value>, ParseError> {
    let text = std::fs::read_to_string(path.as_ref())
        .map_err(|e| ParseError::new(format!("reading {}: {e}", path.as_ref().display())))?;
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .enumerate()
        .map(|(i, line)| {
            json::parse(line)
                .map_err(|e| ParseError::new(format!("invalid JSON: {e}")).in_record(i))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_capture_deltas_and_nesting() {
        let mut rec = Recorder::new();
        let outer = rec.begin("outer");
        rec.charge_rounds(5);
        let inner = rec.begin("inner");
        rec.charge_messages(3, 9);
        rec.end_with_memory(inner, &[1, 2, 10]);
        rec.charge_rounds(2);
        rec.end(outer);

        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[0].delta.rounds, 7);
        assert_eq!(spans[0].delta.messages, 3);
        assert_eq!(spans[1].name, "inner");
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[1].delta.rounds, 0);
        assert_eq!(spans[1].delta.words, 9);
        assert_eq!(spans[1].peak_memory_words, 10);
        assert_eq!(spans[1].memory.unwrap().median, 2);
        // The outer span was open at least as long as the inner one.
        assert!(spans[0].wall_ns >= spans[1].wall_ns);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let mut rec = Recorder::disabled();
        let id = rec.begin("phase");
        rec.charge_rounds(100);
        rec.record_round(RoundSample::default());
        rec.add_record(Value::from("ignored"));
        rec.end(id);
        assert!(!rec.is_enabled());
        assert_eq!(rec.totals(), Counters::ZERO);
        assert!(rec.spans().is_empty());
        assert!(rec.series().is_empty());
        assert!(rec.records().is_empty());
    }

    #[test]
    fn memory_dist_percentiles() {
        let peaks: Vec<usize> = (1..=100).collect();
        let d = MemoryDist::from_peaks(&peaks);
        assert_eq!(d.min, 1);
        assert_eq!(d.median, 51);
        assert_eq!(d.p99, 100);
        assert_eq!(d.max, 100);
        assert!((d.mean - 50.5).abs() < 1e-9);
        assert_eq!(MemoryDist::from_peaks(&[]), MemoryDist::default());
    }

    #[test]
    fn report_round_trips_and_sums() {
        let mut rec = Recorder::new();
        for (name, rounds) in [("a", 3u64), ("b", 4), ("c", 5)] {
            let id = rec.begin(name);
            rec.charge_rounds(rounds);
            rec.charge_messages(rounds * 2, rounds * 6);
            rec.end_with_memory(id, &[rounds as usize, 2 * rounds as usize]);
        }
        rec.record_round(RoundSample {
            round: 1,
            messages: 7,
            words: 7,
            max_edge_words: 2,
            congestion_violations: 0,
            queued_words: 3,
        });
        rec.set_run_memory(&[4, 10, 6]);
        let mut edges = flight::EdgeLoadMap::new();
        edges.record(0, 1, 7);
        rec.add_record(edges.to_value(&[]));

        let dir = std::env::temp_dir().join("obs-unit-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.jsonl");
        rec.write_report(&path, "unit", &[("k", Value::from(2u64))])
            .unwrap();

        let records = read_report(&path).unwrap();
        assert_eq!(records.len(), 6); // 3 spans + series + edge_load + summary
        let summary = records.last().unwrap();
        assert_eq!(summary.get("type").unwrap().as_str(), Some("run_summary"));
        assert_eq!(summary.get("k").unwrap().as_u64(), Some(2));
        assert_eq!(summary.get("peak_memory_words").unwrap().as_u64(), Some(10));
        assert_eq!(summary.get("records").unwrap().as_u64(), Some(1));
        assert!(summary.get("wall_ns").unwrap().as_u64().is_some());
        let edge_record = records
            .iter()
            .find(|r| r.get("type").and_then(Value::as_str) == Some("edge_load"))
            .expect("edge_load record written");
        let parsed = flight::EdgeLoadMap::from_value(edge_record).unwrap();
        assert_eq!(parsed.total_words(), 7);
        let top_spans: Vec<&Value> = records
            .iter()
            .filter(|r| r.get("type").and_then(Value::as_str) == Some("span"))
            .filter(|r| r.get("depth").and_then(Value::as_u64) == Some(0))
            .collect();
        assert_eq!(top_spans.len(), 3);
        let sum: u64 = top_spans
            .iter()
            .map(|s| s.get("rounds").unwrap().as_u64().unwrap())
            .sum();
        assert_eq!(sum, summary.get("rounds").unwrap().as_u64().unwrap());
        let series = records
            .iter()
            .find(|r| r.get("type").and_then(Value::as_str) == Some("round_series"))
            .unwrap();
        assert_eq!(series.get("samples").unwrap().as_array().unwrap().len(), 1);
    }
}
