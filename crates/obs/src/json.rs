//! Dependency-free JSON: a small document model, a compact writer, and a
//! recursive-descent parser.
//!
//! Object fields preserve insertion order so report records are stable and
//! diffable. Numbers are stored as `f64`; integers up to 2^53 round-trip
//! exactly and are printed without a decimal point.

use std::fmt;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers print without a decimal point when exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; fields keep insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Build an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(fields: Vec<(K, Value)>) -> Value {
        Value::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Look up a field of an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Num(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Num(n as f64)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Num(n as f64)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    /// Compact (single-line) JSON serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    // JSON has no Infinity/NaN; degrade to null.
                    f.write_str("null")
                }
            }
            Value::Str(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parse one JSON document from `text` (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogates are not paired; reports never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_compact_json() {
        let v = Value::object(vec![
            ("a", Value::from(3u64)),
            ("b", Value::from("x\"y\n")),
            ("c", Value::Array(vec![Value::Null, Value::from(true)])),
            ("d", Value::from(1.5)),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"a":3,"b":"x\"y\n","c":[null,true],"d":1.5}"#
        );
    }

    #[test]
    fn parses_what_it_writes() {
        let v = Value::object(vec![
            ("name", Value::from("span/α β")),
            ("n", Value::from(12345678901u64)),
            ("f", Value::from(-0.25)),
            (
                "tags",
                Value::Array(vec![Value::from("a"), Value::from("b")]),
            ),
            ("null", Value::Null),
        ]);
        let back = parse(&v.to_string()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"k\" : [ 1 , 2.5 , \"\\u0041\\t\" ] } ").unwrap();
        let items = v.get("k").unwrap().as_array().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[2].as_str(), Some("A\t"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1}x").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn integer_accessors() {
        assert_eq!(Value::from(7u64).as_u64(), Some(7));
        assert_eq!(Value::from(7.5).as_u64(), None);
        assert_eq!(Value::from(-1i64).as_u64(), None);
        assert_eq!(Value::from(7.5).as_f64(), Some(7.5));
    }
}
