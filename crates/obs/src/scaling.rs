//! Scaling-law estimation: log-log least squares and predicted-exponent
//! checks.
//!
//! The paper's evaluation is asymptotic shape — Õ(D+√n) rounds, O(log n)
//! memory, O(1) tables — so the executable form of "does the implementation
//! match the paper" is: sweep `n`, fit `y ≈ c·n^α` by least squares on
//! `(ln n, ln y)`, and assert the fitted `α` lands in the range the theorem
//! predicts once polylog factors are absorbed. [`fit_power_law`] produces the
//! fit, [`ExponentRange`] encodes a prediction, and [`ScalingCheck`] packages
//! one asserted comparison with the same `to_value`/`from_value` round-trip
//! contract as the other report records, so `BENCH_*.json` trajectories carry
//! their own shape verdicts.
//!
//! Log-like growth (`y ≈ c·log n`) has no exact power-law exponent; over any
//! finite range its log-log slope is small and positive (`d ln ln n / d ln n
//! = 1/ln n`, ≈ 0.13 at n = 2048), so "memory is logarithmic" is asserted as
//! an exponent range like `[0, 0.3]` — clearly separated from the √n
//! alternative's 0.5.

use crate::error::ParseError;
use crate::json::Value;

/// A least-squares fit of `ln y = exponent·ln x + intercept_ln`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerLawFit {
    /// The growth exponent (log-log slope).
    pub exponent: f64,
    /// `ln c` for the fitted `y = c·x^exponent`.
    pub intercept_ln: f64,
    /// Coefficient of determination in log space (1.0 for an exact fit; by
    /// convention also 1.0 for a constant series, which the line matches
    /// exactly).
    pub r2: f64,
    /// Number of points fitted.
    pub points: usize,
}

/// Fit `y ≈ c·x^α` over `points` by least squares in log-log space.
///
/// Returns `None` when fewer than two points are given or any coordinate is
/// non-positive (log-log needs positive data; callers with zero-valued
/// series should clamp to 1, which is what "constant, O(1)" means in words).
pub fn fit_power_law(points: &[(f64, f64)]) -> Option<PowerLawFit> {
    if points.len() < 2 || points.iter().any(|&(x, y)| x <= 0.0 || y <= 0.0) {
        return None;
    }
    let logs: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x.ln(), y.ln())).collect();
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom == 0.0 {
        return None; // all x equal: slope undefined
    }
    let exponent = (n * sxy - sx * sy) / denom;
    let intercept_ln = (sy - exponent * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = logs.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = logs
        .iter()
        .map(|p| (p.1 - (exponent * p.0 + intercept_ln)).powi(2))
        .sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(PowerLawFit {
        exponent,
        intercept_ln,
        r2,
        points: points.len(),
    })
}

/// An inclusive range of acceptable growth exponents.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExponentRange {
    /// Smallest acceptable exponent.
    pub lo: f64,
    /// Largest acceptable exponent.
    pub hi: f64,
}

impl ExponentRange {
    /// The range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: f64, hi: f64) -> ExponentRange {
        assert!(lo <= hi, "empty exponent range [{lo}, {hi}]");
        ExponentRange { lo, hi }
    }

    /// Whether `exponent` falls inside the range.
    pub fn contains(&self, exponent: f64) -> bool {
        self.lo <= exponent && exponent <= self.hi
    }
}

/// One fitted exponent compared against its paper-predicted range.
#[derive(Clone, Debug, PartialEq)]
pub struct ScalingCheck {
    /// What grows (e.g. `tree_build/rounds`).
    pub metric: String,
    /// The measured fit.
    pub fit: PowerLawFit,
    /// The predicted exponent range.
    pub predicted: ExponentRange,
    /// Human-readable statement of the prediction (e.g. `Õ(√n + D)`).
    pub claim: String,
}

impl ScalingCheck {
    /// Whether the fitted exponent lands inside the predicted range.
    pub fn ok(&self) -> bool {
        self.predicted.contains(self.fit.exponent)
    }

    /// Serialize as a `scaling_check` object/record.
    pub fn to_value(&self) -> Value {
        Value::object(vec![
            ("type", Value::from("scaling_check")),
            ("metric", Value::from(self.metric.as_str())),
            ("exponent", Value::from(self.fit.exponent)),
            ("intercept_ln", Value::from(self.fit.intercept_ln)),
            ("r2", Value::from(self.fit.r2)),
            ("points", Value::from(self.fit.points)),
            ("predicted_lo", Value::from(self.predicted.lo)),
            ("predicted_hi", Value::from(self.predicted.hi)),
            ("claim", Value::from(self.claim.as_str())),
            ("ok", Value::from(self.ok())),
        ])
    }

    /// Parse a `scaling_check` back.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] naming the first missing or ill-typed field.
    pub fn from_value(v: &Value) -> Result<ScalingCheck, ParseError> {
        if v.get("type").and_then(Value::as_str) != Some("scaling_check") {
            return Err(ParseError::not_record("scaling_check"));
        }
        let num = |key: &str| {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| ParseError::missing(key).for_type("scaling_check"))
        };
        let text = |key: &str| {
            v.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| ParseError::missing(key).for_type("scaling_check"))
                .map(str::to_string)
        };
        Ok(ScalingCheck {
            metric: text("metric")?,
            fit: PowerLawFit {
                exponent: num("exponent")?,
                intercept_ln: num("intercept_ln")?,
                r2: num("r2")?,
                points: num("points")? as usize,
            },
            predicted: ExponentRange::new(num("predicted_lo")?, num("predicted_hi")?),
            claim: text("claim")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(f: impl Fn(f64) -> f64) -> Vec<(f64, f64)> {
        [256.0, 512.0, 1024.0, 2048.0, 4096.0]
            .iter()
            .map(|&n| (n, f(n)))
            .collect()
    }

    #[test]
    fn recovers_sqrt_exponent() {
        let fit = fit_power_law(&series(|n| 3.0 * n.sqrt())).unwrap();
        assert!((fit.exponent - 0.5).abs() < 1e-9, "{fit:?}");
        assert!((fit.r2 - 1.0).abs() < 1e-9);
        assert!((fit.intercept_ln - 3.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn log_series_fits_near_zero_exponent() {
        let fit = fit_power_law(&series(|n| n.ln())).unwrap();
        assert!(fit.exponent > 0.0 && fit.exponent < 0.2, "{fit:?}");
    }

    #[test]
    fn constant_series_fits_zero_with_full_r2() {
        let fit = fit_power_law(&series(|_| 4.0)).unwrap();
        assert!(fit.exponent.abs() < 1e-12);
        assert_eq!(fit.r2, 1.0);
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(fit_power_law(&[(2.0, 4.0)]).is_none());
        assert!(fit_power_law(&[(2.0, 4.0), (2.0, 8.0)]).is_none());
        assert!(fit_power_law(&[(1.0, 0.0), (2.0, 1.0)]).is_none());
        assert!(fit_power_law(&[(-1.0, 1.0), (2.0, 1.0)]).is_none());
    }

    #[test]
    fn check_round_trips_and_judges() {
        let fit = fit_power_law(&series(|n| n.powf(0.62))).unwrap();
        let check = ScalingCheck {
            metric: "tree_build/rounds".to_string(),
            fit,
            predicted: ExponentRange::new(0.35, 0.95),
            claim: "Õ(√n + D)".to_string(),
        };
        assert!(check.ok());
        let parsed =
            ScalingCheck::from_value(&crate::json::parse(&check.to_value().to_string()).unwrap())
                .unwrap();
        assert_eq!(parsed.metric, check.metric);
        assert!((parsed.fit.exponent - check.fit.exponent).abs() < 1e-12);
        assert!(parsed.ok());

        let bad = ScalingCheck {
            predicted: ExponentRange::new(0.0, 0.1),
            ..check
        };
        assert!(!bad.ok());
        assert_eq!(
            bad.to_value().get("ok").and_then(|v| match v {
                Value::Bool(b) => Some(*b),
                _ => None,
            }),
            Some(false)
        );
    }
}
