//! The forwarding-plane flight recorder: hop-by-hop packet traces and
//! link-load heatmaps.
//!
//! The construction plane reports *phase* costs ([`crate::Recorder`]); this
//! module records what the *routing* plane actually does once tables and
//! labels exist. A traced packet accumulates one [`HopRecord`] per edge
//! traversal — the round it was forwarded, the chosen port, the
//! forwarding-decision kind (ascent toward the committed tree's root, or
//! descent along a light/heavy edge), the rounds it sat queued, and the
//! weight accumulated so far. A completed [`PacketTrace`] decomposes the
//! packet's journey into the quantities the compact-routing literature
//! evaluates schemes by: ascent weight vs. descent weight (where the stretch
//! came from) and hop rounds vs. queueing rounds (where the delivery time
//! went).
//!
//! [`EdgeLoadMap`] and [`VertexLoadMap`] aggregate many traces into heatmaps
//! whose word totals are checkable against the engine's congestion ledger,
//! and [`Histogram`] buckets per-pair stretch for the figure reports.
//!
//! Everything serializes to (and parses back from) the crate's JSONL record
//! schema: `packet_trace`, `edge_load`, `vertex_load`, and
//! `stretch_histogram` records ride in the same run reports as the
//! construction spans. Vertices are named by raw `u32` ids so this crate
//! stays dependency-free.

use std::collections::HashMap;

use crate::error::ParseError;
use crate::json::Value;

/// The kind of forwarding decision behind one hop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HopKind {
    /// Toward the committed tree's root (the target is not below us).
    Ascent,
    /// Down a light edge listed in the target's label.
    DescentLight,
    /// Down the heavy-child edge.
    DescentHeavy,
}

impl HopKind {
    /// The schema name of this kind.
    pub fn name(self) -> &'static str {
        match self {
            HopKind::Ascent => "ascent",
            HopKind::DescentLight => "descent-light",
            HopKind::DescentHeavy => "descent-heavy",
        }
    }

    /// Parse a schema name back into a kind.
    pub fn from_name(name: &str) -> Option<HopKind> {
        match name {
            "ascent" => Some(HopKind::Ascent),
            "descent-light" => Some(HopKind::DescentLight),
            "descent-heavy" => Some(HopKind::DescentHeavy),
            _ => None,
        }
    }

    /// Whether this hop moves toward the tree root.
    pub fn is_ascent(self) -> bool {
        self == HopKind::Ascent
    }
}

/// One edge traversal of a traced packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HopRecord {
    /// Round in which the packet left `vertex` (after any queueing).
    pub round: u64,
    /// The forwarding vertex.
    pub vertex: u32,
    /// The port (index into the vertex's neighbor list) the packet took.
    pub port: usize,
    /// The neighbor behind that port.
    pub next: u32,
    /// What the forwarding rule decided.
    pub kind: HopKind,
    /// Rounds the packet waited in `vertex`'s outgoing queue before this hop.
    pub queue_delay: u64,
    /// Weight accumulated *after* traversing this edge.
    pub weight: u64,
    /// Words the packet occupies on the wire (header + label).
    pub header_words: usize,
}

impl HopRecord {
    fn to_value(self) -> Value {
        Value::object(vec![
            ("round", Value::from(self.round)),
            ("vertex", Value::from(u64::from(self.vertex))),
            ("port", Value::from(self.port)),
            ("next", Value::from(u64::from(self.next))),
            ("kind", Value::from(self.kind.name())),
            ("queue_delay", Value::from(self.queue_delay)),
            ("weight", Value::from(self.weight)),
            ("header_words", Value::from(self.header_words)),
        ])
    }

    fn from_value(v: &Value) -> Result<HopRecord, ParseError> {
        let field = |key: &str| {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| ParseError::missing(key).for_type("packet_trace"))
        };
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .and_then(HopKind::from_name)
            .ok_or_else(|| {
                ParseError::bad("kind", "missing or invalid hop kind").for_type("packet_trace")
            })?;
        Ok(HopRecord {
            round: field("round")?,
            vertex: field("vertex")? as u32,
            port: field("port")? as usize,
            next: field("next")? as u32,
            kind,
            queue_delay: field("queue_delay")?,
            weight: field("weight")?,
            header_words: field("header_words")? as usize,
        })
    }
}

/// The stretch/delay decomposition of one delivered packet.
///
/// `ascent_weight + descent_weight` equals the routed path weight, and
/// `hops + queue_rounds` equals the delivery round — the two identities the
/// flight recorder's tests pin down.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlightDecomposition {
    /// Weight accumulated on ascent (toward-root) hops.
    pub ascent_weight: u64,
    /// Weight accumulated on descent (light or heavy) hops.
    pub descent_weight: u64,
    /// Edges traversed on ascent.
    pub ascent_hops: usize,
    /// Edges traversed on descent.
    pub descent_hops: usize,
    /// Total rounds spent queued behind other traffic.
    pub queue_rounds: u64,
}

/// The complete journey of one traced packet.
#[derive(Clone, Debug, PartialEq)]
pub struct PacketTrace {
    /// Source vertex.
    pub src: u32,
    /// Destination vertex.
    pub dst: u32,
    /// Root of the tree the source committed to.
    pub tree_root: u32,
    /// Round of delivery (`None` if the packet was dropped mid-route).
    pub delivered_round: Option<u64>,
    /// One record per edge traversal, in order.
    pub hops: Vec<HopRecord>,
}

impl PacketTrace {
    /// Number of edges traversed.
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// Weight accumulated over the whole journey.
    pub fn total_weight(&self) -> u64 {
        self.hops.last().map_or(0, |h| h.weight)
    }

    /// Total rounds spent queued.
    pub fn queueing_delay(&self) -> u64 {
        self.hops.iter().map(|h| h.queue_delay).sum()
    }

    /// Split the journey into ascent/descent weight and hop/queue rounds.
    pub fn decomposition(&self) -> FlightDecomposition {
        let mut d = FlightDecomposition::default();
        let mut prev_weight = 0u64;
        for hop in &self.hops {
            let edge = hop.weight.saturating_sub(prev_weight);
            prev_weight = hop.weight;
            if hop.kind.is_ascent() {
                d.ascent_weight += edge;
                d.ascent_hops += 1;
            } else {
                d.descent_weight += edge;
                d.descent_hops += 1;
            }
            d.queue_rounds += hop.queue_delay;
        }
        d
    }

    /// Serialize as a `packet_trace` JSONL record.
    pub fn to_value(&self) -> Value {
        let d = self.decomposition();
        Value::object(vec![
            ("type", Value::from("packet_trace")),
            ("src", Value::from(u64::from(self.src))),
            ("dst", Value::from(u64::from(self.dst))),
            ("tree_root", Value::from(u64::from(self.tree_root))),
            ("delivered", Value::from(self.delivered_round.is_some())),
            (
                "delivered_round",
                self.delivered_round.map_or(Value::Null, Value::from),
            ),
            ("weight", Value::from(self.total_weight())),
            ("hops", Value::from(self.hop_count())),
            ("ascent_weight", Value::from(d.ascent_weight)),
            ("descent_weight", Value::from(d.descent_weight)),
            ("queue_rounds", Value::from(d.queue_rounds)),
            (
                "path",
                Value::Array(self.hops.iter().map(|h| h.to_value()).collect()),
            ),
        ])
    }

    /// Parse a `packet_trace` record back.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] naming the first missing or ill-typed field.
    pub fn from_value(v: &Value) -> Result<PacketTrace, ParseError> {
        if v.get("type").and_then(Value::as_str) != Some("packet_trace") {
            return Err(ParseError::not_record("packet_trace"));
        }
        let field = |key: &str| {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| ParseError::missing(key).for_type("packet_trace"))
        };
        let hops = v
            .get("path")
            .and_then(Value::as_array)
            .ok_or_else(|| ParseError::missing("path").for_type("packet_trace"))?
            .iter()
            .map(HopRecord::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PacketTrace {
            src: field("src")? as u32,
            dst: field("dst")? as u32,
            tree_root: field("tree_root")? as u32,
            delivered_round: v.get("delivered_round").and_then(Value::as_u64),
            hops,
        })
    }
}

/// Distribution summary of a set of per-edge (or per-vertex) loads.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LoadStats {
    /// Smallest load.
    pub min: u64,
    /// Median load.
    pub p50: u64,
    /// 95th-percentile load.
    pub p95: u64,
    /// 99th-percentile load.
    pub p99: u64,
    /// Largest load — the saturation hotspot.
    pub max: u64,
    /// Mean load.
    pub mean: f64,
}

impl LoadStats {
    /// Summarize `loads` (order irrelevant; empty input yields zeros).
    pub fn from_loads(loads: &[u64]) -> LoadStats {
        if loads.is_empty() {
            return LoadStats::default();
        }
        let mut sorted = loads.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let pct = |q: usize| sorted[((n * q) / 100).min(n - 1)];
        LoadStats {
            min: sorted[0],
            p50: sorted[n / 2],
            p95: pct(95),
            p99: pct(99),
            max: sorted[n - 1],
            mean: sorted.iter().sum::<u64>() as f64 / n as f64,
        }
    }

    pub(crate) fn to_value(self) -> Value {
        Value::object(vec![
            ("min", Value::from(self.min)),
            ("p50", Value::from(self.p50)),
            ("p95", Value::from(self.p95)),
            ("p99", Value::from(self.p99)),
            ("max", Value::from(self.max)),
            ("mean", Value::from(self.mean)),
        ])
    }

    pub(crate) fn from_value(v: &Value) -> Result<LoadStats, ParseError> {
        let field = |key: &str| {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| ParseError::bad(key, "load stats missing numeric field"))
        };
        Ok(LoadStats {
            min: field("min")?,
            p50: field("p50")?,
            p95: field("p95")?,
            p99: field("p99")?,
            max: field("max")?,
            mean: v
                .get("mean")
                .and_then(Value::as_f64)
                .ok_or_else(|| ParseError::bad("mean", "load stats missing numeric field"))?,
        })
    }
}

/// Traffic observed on one edge (or through one vertex).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Load {
    /// Packets that traversed it.
    pub packets: u64,
    /// Words those packets carried.
    pub words: u64,
}

/// Per-edge traffic heatmap aggregated from hop records.
///
/// Edges are undirected: `(u, v)` and `(v, u)` accumulate into one cell.
/// The words total equals the engine ledger's delivered-words total when
/// every message of the run was a traced packet — the invariant the flight
/// recorder's accounting tests check.
#[derive(Clone, Debug, Default)]
pub struct EdgeLoadMap {
    loads: HashMap<(u32, u32), Load>,
}

impl EdgeLoadMap {
    /// An empty map.
    pub fn new() -> EdgeLoadMap {
        EdgeLoadMap::default()
    }

    /// Record one packet of `words` words crossing `a — b`.
    pub fn record(&mut self, a: u32, b: u32, words: u64) {
        let key = (a.min(b), a.max(b));
        let load = self.loads.entry(key).or_default();
        load.packets += 1;
        load.words += words;
    }

    /// Fold every hop of `trace` into the map.
    pub fn record_trace(&mut self, trace: &PacketTrace) {
        for hop in &trace.hops {
            self.record(hop.vertex, hop.next, hop.header_words as u64);
        }
    }

    /// Number of distinct edges that saw traffic.
    pub fn len(&self) -> usize {
        self.loads.len()
    }

    /// Whether no traffic was recorded.
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty()
    }

    /// Total words over all edges.
    pub fn total_words(&self) -> u64 {
        self.loads.values().map(|l| l.words).sum()
    }

    /// Total packet traversals over all edges.
    pub fn total_packets(&self) -> u64 {
        self.loads.values().map(|l| l.packets).sum()
    }

    /// The load on `a — b`, if any.
    pub fn load(&self, a: u32, b: u32) -> Option<Load> {
        self.loads.get(&(a.min(b), a.max(b))).copied()
    }

    /// Distribution of per-edge word loads.
    pub fn stats(&self) -> LoadStats {
        let loads: Vec<u64> = self.loads.values().map(|l| l.words).collect();
        LoadStats::from_loads(&loads)
    }

    /// The `k` hottest edges by word load, descending; ties break toward
    /// the smaller endpoint pair so the ranking is deterministic.
    pub fn hottest(&self, k: usize) -> Vec<((u32, u32), Load)> {
        let mut entries: Vec<((u32, u32), Load)> =
            self.loads.iter().map(|(&e, &l)| (e, l)).collect();
        entries.sort_by(|(ea, la), (eb, lb)| lb.words.cmp(&la.words).then(ea.cmp(eb)));
        entries.truncate(k);
        entries
    }

    /// Fold every cell of `other` into this map.
    pub fn merge(&mut self, other: &EdgeLoadMap) {
        for (&(u, v), load) in &other.loads {
            let cell = self.loads.entry((u, v)).or_default();
            cell.packets += load.packets;
            cell.words += load.words;
        }
    }

    /// Serialize as an `edge_load` JSONL record; `extra` fields (e.g. the
    /// offered load level) are appended to the top-level object. Entries are
    /// sorted by endpoint ids so records are deterministic and diffable.
    pub fn to_value(&self, extra: &[(&str, Value)]) -> Value {
        let mut entries: Vec<(&(u32, u32), &Load)> = self.loads.iter().collect();
        entries.sort_by_key(|(k, _)| **k);
        let edges: Vec<Value> = entries
            .into_iter()
            .map(|(&(u, v), load)| {
                Value::object(vec![
                    ("u", Value::from(u64::from(u))),
                    ("v", Value::from(u64::from(v))),
                    ("packets", Value::from(load.packets)),
                    ("words", Value::from(load.words)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("type", Value::from("edge_load")),
            ("edges", Value::from(self.len())),
            ("total_packets", Value::from(self.total_packets())),
            ("total_words", Value::from(self.total_words())),
            ("load", self.stats().to_value()),
            ("heatmap", Value::Array(edges)),
        ];
        for (k, v) in extra {
            fields.push((k, v.clone()));
        }
        Value::object(fields)
    }

    /// Parse an `edge_load` record back.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] naming the first missing or ill-typed
    /// field, or a mismatch between the heatmap entries and the recorded
    /// totals.
    pub fn from_value(v: &Value) -> Result<EdgeLoadMap, ParseError> {
        if v.get("type").and_then(Value::as_str) != Some("edge_load") {
            return Err(ParseError::not_record("edge_load"));
        }
        let mut map = EdgeLoadMap::new();
        let entries = v
            .get("heatmap")
            .and_then(Value::as_array)
            .ok_or_else(|| ParseError::missing("heatmap").for_type("edge_load"))?;
        for e in entries {
            let field = |key: &str| {
                e.get(key).and_then(Value::as_u64).ok_or_else(|| {
                    ParseError::bad(key, "heatmap entry missing field").for_type("edge_load")
                })
            };
            let key = (field("u")? as u32, field("v")? as u32);
            let load = map.loads.entry(key).or_default();
            load.packets += field("packets")?;
            load.words += field("words")?;
        }
        let total = v
            .get("total_words")
            .and_then(Value::as_u64)
            .ok_or_else(|| ParseError::missing("total_words").for_type("edge_load"))?;
        if total != map.total_words() {
            return Err(ParseError::bad(
                "total_words",
                format!(
                    "edge_load total_words {total} != heatmap sum {}",
                    map.total_words()
                ),
            )
            .for_type("edge_load"));
        }
        Ok(map)
    }
}

/// Per-vertex forwarding heatmap: traffic each vertex pushed downstream.
#[derive(Clone, Debug, Default)]
pub struct VertexLoadMap {
    loads: HashMap<u32, Load>,
}

impl VertexLoadMap {
    /// An empty map.
    pub fn new() -> VertexLoadMap {
        VertexLoadMap::default()
    }

    /// Record one packet of `words` words forwarded by `v`.
    pub fn record(&mut self, v: u32, words: u64) {
        let load = self.loads.entry(v).or_default();
        load.packets += 1;
        load.words += words;
    }

    /// Fold every hop of `trace` into the map (charged to the forwarder).
    pub fn record_trace(&mut self, trace: &PacketTrace) {
        for hop in &trace.hops {
            self.record(hop.vertex, hop.header_words as u64);
        }
    }

    /// Number of vertices that forwarded traffic.
    pub fn len(&self) -> usize {
        self.loads.len()
    }

    /// Whether no traffic was recorded.
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty()
    }

    /// Total words forwarded.
    pub fn total_words(&self) -> u64 {
        self.loads.values().map(|l| l.words).sum()
    }

    /// The load forwarded by `v`, if any.
    pub fn load(&self, v: u32) -> Option<Load> {
        self.loads.get(&v).copied()
    }

    /// Distribution of per-vertex word loads.
    pub fn stats(&self) -> LoadStats {
        let loads: Vec<u64> = self.loads.values().map(|l| l.words).collect();
        LoadStats::from_loads(&loads)
    }

    /// Serialize as a `vertex_load` JSONL record (entries sorted by id).
    pub fn to_value(&self, extra: &[(&str, Value)]) -> Value {
        let mut entries: Vec<(&u32, &Load)> = self.loads.iter().collect();
        entries.sort_by_key(|(k, _)| **k);
        let vertices: Vec<Value> = entries
            .into_iter()
            .map(|(&v, load)| {
                Value::object(vec![
                    ("v", Value::from(u64::from(v))),
                    ("packets", Value::from(load.packets)),
                    ("words", Value::from(load.words)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("type", Value::from("vertex_load")),
            ("vertices", Value::from(self.len())),
            ("total_words", Value::from(self.total_words())),
            ("load", self.stats().to_value()),
            ("heatmap", Value::Array(vertices)),
        ];
        for (k, v) in extra {
            fields.push((k, v.clone()));
        }
        Value::object(fields)
    }

    /// Parse a `vertex_load` record back.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] naming the first missing or ill-typed
    /// field, or a mismatch between the heatmap entries and the recorded
    /// totals.
    pub fn from_value(v: &Value) -> Result<VertexLoadMap, ParseError> {
        if v.get("type").and_then(Value::as_str) != Some("vertex_load") {
            return Err(ParseError::not_record("vertex_load"));
        }
        let mut map = VertexLoadMap::new();
        let entries = v
            .get("heatmap")
            .and_then(Value::as_array)
            .ok_or_else(|| ParseError::missing("heatmap").for_type("vertex_load"))?;
        for e in entries {
            let field = |key: &str| {
                e.get(key).and_then(Value::as_u64).ok_or_else(|| {
                    ParseError::bad(key, "heatmap entry missing field").for_type("vertex_load")
                })
            };
            let load = map.loads.entry(field("v")? as u32).or_default();
            load.packets += field("packets")?;
            load.words += field("words")?;
        }
        let total = v
            .get("total_words")
            .and_then(Value::as_u64)
            .ok_or_else(|| ParseError::missing("total_words").for_type("vertex_load"))?;
        if total != map.total_words() {
            return Err(ParseError::bad(
                "total_words",
                format!(
                    "vertex_load total_words {total} != heatmap sum {}",
                    map.total_words()
                ),
            )
            .for_type("vertex_load"));
        }
        Ok(map)
    }
}

/// A fixed-width histogram for per-pair stretch (or any non-negative reals).
///
/// Buckets are `[lo + i·width, lo + (i+1)·width)`; values at or above the
/// top edge land in the last (overflow) bucket.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    lo: f64,
    width: f64,
    counts: Vec<u64>,
    total: u64,
    max: f64,
}

impl Histogram {
    /// A histogram of `buckets` cells of `width` starting at `lo`.
    ///
    /// # Panics
    ///
    /// Panics when `buckets` is zero or `width` is not positive.
    pub fn uniform(lo: f64, width: f64, buckets: usize) -> Histogram {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(width > 0.0, "bucket width must be positive");
        Histogram {
            lo,
            width,
            counts: vec![0; buckets],
            total: 0,
            max: f64::NEG_INFINITY,
        }
    }

    /// Bucket all of `values`. Stretch histograms start at 1.0 (a routed
    /// path is never shorter than the distance) with bucket width 0.25.
    pub fn of_stretch(values: &[f64], buckets: usize) -> Histogram {
        let mut h = Histogram::uniform(1.0, 0.25, buckets.max(1));
        for &v in values {
            h.add(v);
        }
        h
    }

    /// Count one value.
    pub fn add(&mut self, value: f64) {
        let idx = if value < self.lo {
            0
        } else {
            (((value - self.lo) / self.width) as usize).min(self.counts.len() - 1)
        };
        self.counts[idx] += 1;
        self.total += 1;
        self.max = self.max.max(value);
    }

    /// Number of values counted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Serialize as a `stretch_histogram` JSONL record.
    pub fn to_value(&self, extra: &[(&str, Value)]) -> Value {
        let buckets: Vec<Value> = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &count)| {
                Value::object(vec![
                    ("lo", Value::from(self.lo + i as f64 * self.width)),
                    ("hi", Value::from(self.lo + (i + 1) as f64 * self.width)),
                    ("count", Value::from(count)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("type", Value::from("stretch_histogram")),
            ("total", Value::from(self.total)),
            (
                "max",
                if self.total == 0 {
                    Value::Null
                } else {
                    Value::from(self.max)
                },
            ),
            ("buckets", Value::Array(buckets)),
        ];
        for (k, v) in extra {
            fields.push((k, v.clone()));
        }
        Value::object(fields)
    }

    /// Parse a `stretch_histogram` record back.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] naming the first missing or ill-typed
    /// field, or a total that disagrees with the bucket counts.
    pub fn from_value(v: &Value) -> Result<Histogram, ParseError> {
        if v.get("type").and_then(Value::as_str) != Some("stretch_histogram") {
            return Err(ParseError::not_record("stretch_histogram"));
        }
        let buckets = v
            .get("buckets")
            .and_then(Value::as_array)
            .ok_or_else(|| ParseError::missing("buckets").for_type("stretch_histogram"))?;
        if buckets.is_empty() {
            return Err(ParseError::bad("buckets", "histogram has no buckets")
                .for_type("stretch_histogram"));
        }
        let edge = |b: &Value, key: &str| {
            b.get(key).and_then(Value::as_f64).ok_or_else(|| {
                ParseError::bad(key, "histogram bucket missing field").for_type("stretch_histogram")
            })
        };
        let lo = edge(&buckets[0], "lo")?;
        let width = edge(&buckets[0], "hi")? - lo;
        if width <= 0.0 {
            return Err(
                ParseError::bad("hi", "histogram bucket width must be positive")
                    .for_type("stretch_histogram"),
            );
        }
        let counts = buckets
            .iter()
            .map(|b| {
                b.get("count").and_then(Value::as_u64).ok_or_else(|| {
                    ParseError::bad("count", "histogram bucket missing field")
                        .for_type("stretch_histogram")
                })
            })
            .collect::<Result<Vec<u64>, ParseError>>()?;
        let total = v
            .get("total")
            .and_then(Value::as_u64)
            .ok_or_else(|| ParseError::missing("total").for_type("stretch_histogram"))?;
        if total != counts.iter().sum::<u64>() {
            return Err(ParseError::bad(
                "total",
                format!(
                    "stretch_histogram total {total} != bucket sum {}",
                    counts.iter().sum::<u64>()
                ),
            )
            .for_type("stretch_histogram"));
        }
        let max = v
            .get("max")
            .and_then(Value::as_f64)
            .unwrap_or(f64::NEG_INFINITY);
        Ok(Histogram {
            lo,
            width,
            counts,
            total,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn hop(
        round: u64,
        vertex: u32,
        next: u32,
        kind: HopKind,
        delay: u64,
        weight: u64,
    ) -> HopRecord {
        HopRecord {
            round,
            vertex,
            port: 0,
            next,
            kind,
            queue_delay: delay,
            weight,
            header_words: 5,
        }
    }

    #[test]
    fn decomposition_splits_ascent_and_descent() {
        let trace = PacketTrace {
            src: 0,
            dst: 3,
            tree_root: 2,
            delivered_round: Some(5),
            hops: vec![
                hop(0, 0, 1, HopKind::Ascent, 0, 4),
                hop(2, 1, 2, HopKind::Ascent, 1, 9),
                hop(4, 2, 3, HopKind::DescentHeavy, 1, 11),
            ],
        };
        let d = trace.decomposition();
        assert_eq!(d.ascent_weight, 9);
        assert_eq!(d.descent_weight, 2);
        assert_eq!(d.ascent_hops, 2);
        assert_eq!(d.descent_hops, 1);
        assert_eq!(d.queue_rounds, 2);
        assert_eq!(trace.total_weight(), 11);
        assert_eq!(trace.queueing_delay(), 2);
        // Delivery round = hops + queueing.
        assert_eq!(
            trace.delivered_round.unwrap(),
            trace.hop_count() as u64 + d.queue_rounds
        );
    }

    #[test]
    fn packet_trace_round_trips_through_json() {
        let trace = PacketTrace {
            src: 7,
            dst: 8,
            tree_root: 1,
            delivered_round: Some(3),
            hops: vec![
                hop(0, 7, 1, HopKind::Ascent, 0, 2),
                hop(1, 1, 9, HopKind::DescentLight, 0, 5),
                hop(2, 9, 8, HopKind::DescentHeavy, 0, 6),
            ],
        };
        let text = trace.to_value().to_string();
        let back = PacketTrace::from_value(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn undelivered_trace_serializes_null_round() {
        let trace = PacketTrace {
            src: 0,
            dst: 1,
            tree_root: 0,
            delivered_round: None,
            hops: vec![hop(0, 0, 2, HopKind::Ascent, 0, 1)],
        };
        let v = trace.to_value();
        assert_eq!(v.get("delivered"), Some(&Value::Bool(false)));
        assert_eq!(v.get("delivered_round"), Some(&Value::Null));
        let back = PacketTrace::from_value(&v).unwrap();
        assert_eq!(back.delivered_round, None);
    }

    #[test]
    fn edge_load_map_normalizes_direction_and_sums() {
        let mut map = EdgeLoadMap::new();
        map.record(3, 1, 10);
        map.record(1, 3, 5);
        map.record(0, 1, 7);
        assert_eq!(map.len(), 2);
        assert_eq!(map.load(1, 3).unwrap().packets, 2);
        assert_eq!(map.load(1, 3).unwrap().words, 15);
        assert_eq!(map.total_words(), 22);
        assert_eq!(map.total_packets(), 3);
        let stats = map.stats();
        assert_eq!(stats.max, 15);
        assert_eq!(stats.min, 7);
    }

    #[test]
    fn edge_load_round_trips_through_json() {
        let mut map = EdgeLoadMap::new();
        map.record(0, 1, 4);
        map.record(1, 2, 9);
        map.record(2, 1, 9);
        let text = map.to_value(&[("packets", Value::from(3u64))]).to_string();
        let v = json::parse(&text).unwrap();
        assert_eq!(v.get("packets").unwrap().as_u64(), Some(3));
        let back = EdgeLoadMap::from_value(&v).unwrap();
        assert_eq!(back.total_words(), map.total_words());
        assert_eq!(back.load(1, 2), map.load(1, 2));
    }

    #[test]
    fn hottest_ranks_by_words_with_deterministic_ties() {
        let mut map = EdgeLoadMap::new();
        map.record(0, 1, 5);
        map.record(2, 3, 9);
        map.record(4, 5, 9);
        map.record(6, 7, 1);
        let top = map.hottest(3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].0, (2, 3)); // ties break toward smaller endpoints
        assert_eq!(top[1].0, (4, 5));
        assert_eq!(top[2].0, (0, 1));
        assert!(map.hottest(10).len() == 4);
    }

    #[test]
    fn merge_folds_cells() {
        let mut a = EdgeLoadMap::new();
        a.record(0, 1, 5);
        let mut b = EdgeLoadMap::new();
        b.record(1, 0, 3);
        b.record(2, 3, 2);
        a.merge(&b);
        assert_eq!(a.load(0, 1).unwrap().words, 8);
        assert_eq!(a.load(0, 1).unwrap().packets, 2);
        assert_eq!(a.total_words(), 10);
    }

    #[test]
    fn edge_load_rejects_total_mismatch() {
        let mut map = EdgeLoadMap::new();
        map.record(0, 1, 4);
        let mut v = map.to_value(&[]);
        if let Value::Object(fields) = &mut v {
            for (k, val) in fields.iter_mut() {
                if k == "total_words" {
                    *val = Value::from(999u64);
                }
            }
        }
        assert!(EdgeLoadMap::from_value(&v).is_err());
    }

    #[test]
    fn vertex_load_tracks_forwarders() {
        let trace = PacketTrace {
            src: 0,
            dst: 2,
            tree_root: 1,
            delivered_round: Some(2),
            hops: vec![
                hop(0, 0, 1, HopKind::Ascent, 0, 1),
                hop(1, 1, 2, HopKind::DescentHeavy, 0, 2),
            ],
        };
        let mut map = VertexLoadMap::new();
        map.record_trace(&trace);
        assert_eq!(map.len(), 2);
        assert_eq!(map.load(0).unwrap().words, 5);
        assert_eq!(map.total_words(), 10);
        assert!(map.load(2).is_none(), "the target forwarded nothing");
    }

    #[test]
    fn load_stats_percentiles() {
        let loads: Vec<u64> = (1..=100).collect();
        let s = LoadStats::from_loads(&loads);
        assert_eq!(s.min, 1);
        assert_eq!(s.p50, 51);
        assert_eq!(s.p95, 96);
        assert_eq!(s.p99, 100);
        assert_eq!(s.max, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(LoadStats::from_loads(&[]), LoadStats::default());
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::uniform(1.0, 0.5, 4);
        for v in [1.0, 1.2, 1.6, 2.9, 10.0, 0.5] {
            h.add(v);
        }
        // [1.0,1.5): 1.0, 1.2, and the clamped-under 0.5.
        assert_eq!(h.counts(), &[3, 1, 0, 2]);
        assert_eq!(h.total(), 6);
        let v = h.to_value(&[("k", Value::from(3u64))]);
        assert_eq!(v.get("type").unwrap().as_str(), Some("stretch_histogram"));
        assert_eq!(v.get("total").unwrap().as_u64(), Some(6));
        assert_eq!(v.get("k").unwrap().as_u64(), Some(3));
        let buckets = v.get("buckets").unwrap().as_array().unwrap();
        assert_eq!(buckets.len(), 4);
        let sum: u64 = buckets
            .iter()
            .map(|b| b.get("count").unwrap().as_u64().unwrap())
            .sum();
        assert_eq!(sum, 6);
    }

    #[test]
    fn stretch_histogram_of_values() {
        let h = Histogram::of_stretch(&[1.0, 1.1, 1.3, 2.0], 8);
        assert_eq!(h.total(), 4);
        assert_eq!(h.counts()[0], 2); // [1.0, 1.25)
        let v = h.to_value(&[]);
        assert!((v.get("max").unwrap().as_f64().unwrap() - 2.0).abs() < 1e-12);
    }
}
