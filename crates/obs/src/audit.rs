//! The `scheme_audit` record: per-component memory attribution, structural
//! invariant verdicts, and routing-consistency probe results for one built
//! routing scheme.
//!
//! The paper's headline claim is *low memory*, stated per component: Õ(1)
//! tree tables, O(log n) tree labels, Õ(n^{1/k}) cluster memberships, O(k)
//! pivot words. This record is the executable form of that breakdown — each
//! component carries its own total and p50/p95/p99/max over vertices, the
//! component sums are asserted to reconcile exactly with the resident words
//! the construction charged to its `MemoryMeter`, and the structural and
//! sampled-routing audits ride along so one JSONL line answers both "where
//! do the words live" and "does the scheme actually hold together".
//!
//! The producing walker lives in the `routing` crate (`routing::audit`);
//! this module owns the serialized shape and its `to_value`/`from_value`
//! round-trip contract, like the other report records.

use crate::error::ParseError;
use crate::json::Value;

/// Distribution summary of one memory component over all vertices.
#[derive(Clone, Debug, PartialEq)]
pub struct ComponentStat {
    /// Component name (e.g. `cluster_membership`, `tree_labels`).
    pub name: String,
    /// Whether the component is part of the post-build resident words (the
    /// sum the meter cross-check reconciles). Construction-only state such
    /// as hopset out-edges is reported with `resident: false`.
    pub resident: bool,
    /// Total words across all vertices.
    pub total: u64,
    /// Largest per-vertex value.
    pub max: u64,
    /// Mean per-vertex value.
    pub mean: f64,
    /// Median per-vertex value.
    pub p50: u64,
    /// 95th-percentile per-vertex value.
    pub p95: u64,
    /// 99th-percentile per-vertex value.
    pub p99: u64,
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).floor() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

impl ComponentStat {
    /// Summarize one per-vertex word series.
    pub fn from_words(name: &str, resident: bool, words: &[u64]) -> ComponentStat {
        let mut sorted = words.to_vec();
        sorted.sort_unstable();
        let total: u64 = sorted.iter().sum();
        ComponentStat {
            name: name.to_string(),
            resident,
            total,
            max: sorted.last().copied().unwrap_or(0),
            mean: if sorted.is_empty() {
                0.0
            } else {
                total as f64 / sorted.len() as f64
            },
            p50: quantile(&sorted, 0.50),
            p95: quantile(&sorted, 0.95),
            p99: quantile(&sorted, 0.99),
        }
    }

    fn to_value(&self) -> Value {
        Value::object(vec![
            ("name", Value::from(self.name.as_str())),
            ("resident", Value::from(self.resident)),
            ("total", Value::from(self.total)),
            ("max", Value::from(self.max)),
            ("mean", Value::from(self.mean)),
            ("p50", Value::from(self.p50)),
            ("p95", Value::from(self.p95)),
            ("p99", Value::from(self.p99)),
        ])
    }

    fn from_value(v: &Value) -> Result<ComponentStat, ParseError> {
        Ok(ComponentStat {
            name: text(v, "name")?,
            resident: boolean(v, "resident")?,
            total: uint(v, "total")?,
            max: uint(v, "max")?,
            mean: float(v, "mean")?,
            p50: uint(v, "p50")?,
            p95: uint(v, "p95")?,
            p99: uint(v, "p99")?,
        })
    }
}

/// One structural invariant's verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantStat {
    /// Invariant name (e.g. `dfs_nesting`, `label_coverage`).
    pub name: String,
    /// How many facts the invariant examined.
    pub checked: u64,
    /// How many failed.
    pub violations: u64,
}

impl InvariantStat {
    fn to_value(&self) -> Value {
        Value::object(vec![
            ("name", Value::from(self.name.as_str())),
            ("checked", Value::from(self.checked)),
            ("violations", Value::from(self.violations)),
        ])
    }

    fn from_value(v: &Value) -> Result<InvariantStat, ParseError> {
        Ok(InvariantStat {
            name: text(v, "name")?,
            checked: uint(v, "checked")?,
            violations: uint(v, "violations")?,
        })
    }
}

/// Sampled routing-consistency results against the central oracle and exact
/// Dijkstra distances, on the intact or a perturbed graph.
#[derive(Clone, Debug, PartialEq)]
pub struct ProbeStat {
    /// Source–target pairs examined.
    pub pairs: u64,
    /// Pairs connected in the probed graph (the reachability denominator).
    pub connected: u64,
    /// Connected pairs the forwarding rule delivered.
    pub delivered: u64,
    /// Failures: endpoints share no routing tree.
    pub no_common_tree: u64,
    /// Failures: rule stuck mid-route.
    pub stuck: u64,
    /// Failures: forwarded over a missing edge or to a tableless vertex.
    pub bad_forward: u64,
    /// Failures: hop cap exceeded (forwarding loop).
    pub looped: u64,
    /// Delivered routes whose weight undershot the exact distance
    /// (impossible for a correct scheme — always a violation).
    pub undershoots: u64,
    /// Delivered routes whose stretch exceeded the `4k − 3 (+slack)` bound.
    pub over_bound: u64,
    /// Oracle estimates below the exact distance.
    pub oracle_undershoots: u64,
    /// Oracle estimates above the `2k − 1 (+slack)` bound.
    pub oracle_over_bound: u64,
    /// Mean stretch over delivered pairs.
    pub mean_stretch: f64,
    /// Worst stretch over delivered pairs.
    pub max_stretch: f64,
    /// Whether every pair was swept (small n) rather than sampled.
    pub full_sweep: bool,
}

impl ProbeStat {
    /// Fraction of connected pairs that delivered (1.0 when none were
    /// connected — an empty probe is vacuously healthy).
    pub fn reachability(&self) -> f64 {
        if self.connected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.connected as f64
        }
    }

    fn to_value(&self) -> Value {
        Value::object(vec![
            ("pairs", Value::from(self.pairs)),
            ("connected", Value::from(self.connected)),
            ("delivered", Value::from(self.delivered)),
            ("no_common_tree", Value::from(self.no_common_tree)),
            ("stuck", Value::from(self.stuck)),
            ("bad_forward", Value::from(self.bad_forward)),
            ("looped", Value::from(self.looped)),
            ("undershoots", Value::from(self.undershoots)),
            ("over_bound", Value::from(self.over_bound)),
            ("oracle_undershoots", Value::from(self.oracle_undershoots)),
            ("oracle_over_bound", Value::from(self.oracle_over_bound)),
            ("mean_stretch", Value::from(self.mean_stretch)),
            ("max_stretch", Value::from(self.max_stretch)),
            ("full_sweep", Value::from(self.full_sweep)),
            ("reachability", Value::from(self.reachability())),
        ])
    }

    fn from_value(v: &Value) -> Result<ProbeStat, ParseError> {
        let probe = ProbeStat {
            pairs: uint(v, "pairs")?,
            connected: uint(v, "connected")?,
            delivered: uint(v, "delivered")?,
            no_common_tree: uint(v, "no_common_tree")?,
            stuck: uint(v, "stuck")?,
            bad_forward: uint(v, "bad_forward")?,
            looped: uint(v, "looped")?,
            undershoots: uint(v, "undershoots")?,
            over_bound: uint(v, "over_bound")?,
            oracle_undershoots: uint(v, "oracle_undershoots")?,
            oracle_over_bound: uint(v, "oracle_over_bound")?,
            mean_stretch: float(v, "mean_stretch")?,
            max_stretch: float(v, "max_stretch")?,
            full_sweep: boolean(v, "full_sweep")?,
        };
        // Re-check the probe's counting identities on parse, like the
        // traffic summary's conservation law: outcomes partition the
        // connected pairs, and connected pairs are a subset of sampled.
        if probe.connected > probe.pairs {
            return Err(ParseError::bad("connected", "exceeds sampled pairs"));
        }
        let resolved =
            probe.delivered + probe.no_common_tree + probe.stuck + probe.bad_forward + probe.looped;
        if resolved != probe.connected {
            return Err(ParseError::bad(
                "delivered",
                format!(
                    "outcomes sum to {resolved} but {} pairs are connected",
                    probe.connected
                ),
            ));
        }
        Ok(probe)
    }
}

/// Results of re-probing the stale scheme against a perturbed graph.
#[derive(Clone, Debug, PartialEq)]
pub struct PerturbedStat {
    /// Requested edge-kill probability.
    pub kill_edges: f64,
    /// Requested vertex-kill probability.
    pub kill_vertices: f64,
    /// Edges actually removed (including those incident to killed vertices).
    pub killed_edges: u64,
    /// Vertices actually killed.
    pub killed_vertices: u64,
    /// The probe against the perturbed graph with the stale tables.
    pub probe: ProbeStat,
    /// Perturbed mean stretch over the intact mean stretch (1.0 when either
    /// probe delivered nothing).
    pub stretch_inflation: f64,
}

impl PerturbedStat {
    fn to_value(&self) -> Value {
        Value::object(vec![
            ("kill_edges", Value::from(self.kill_edges)),
            ("kill_vertices", Value::from(self.kill_vertices)),
            ("killed_edges", Value::from(self.killed_edges)),
            ("killed_vertices", Value::from(self.killed_vertices)),
            ("probe", self.probe.to_value()),
            ("stretch_inflation", Value::from(self.stretch_inflation)),
        ])
    }

    fn from_value(v: &Value) -> Result<PerturbedStat, ParseError> {
        Ok(PerturbedStat {
            kill_edges: float(v, "kill_edges")?,
            kill_vertices: float(v, "kill_vertices")?,
            killed_edges: uint(v, "killed_edges")?,
            killed_vertices: uint(v, "killed_vertices")?,
            probe: ProbeStat::from_value(
                v.get("probe").ok_or_else(|| ParseError::missing("probe"))?,
            )
            .map_err(|e| e.for_type("scheme_audit"))?,
            stretch_inflation: float(v, "stretch_inflation")?,
        })
    }
}

/// One full scheme audit: attribution + invariants + probes.
#[derive(Clone, Debug, PartialEq)]
pub struct SchemeAudit {
    /// Vertices in the audited scheme.
    pub n: u64,
    /// The scheme's `k`.
    pub k: u64,
    /// Construction mode name.
    pub mode: String,
    /// Per-component memory attribution.
    pub components: Vec<ComponentStat>,
    /// Whether every vertex's resident components summed exactly to its
    /// independently computed resident word count.
    pub attribution_exact: bool,
    /// Total resident words across all vertices.
    pub resident_total: u64,
    /// Largest per-vertex resident word count.
    pub resident_max: u64,
    /// Whether a build-time `MemoryMeter` was available to cross-check.
    pub meter_checked: bool,
    /// Whether the metered peaks dominated the resident attribution at
    /// every vertex (vacuously true when `meter_checked` is false).
    pub meter_ok: bool,
    /// Structural invariant verdicts.
    pub invariants: Vec<InvariantStat>,
    /// The intact-graph consistency probe.
    pub probe: ProbeStat,
    /// The perturbed-graph health probe, when one was requested.
    pub perturbed: Option<PerturbedStat>,
    /// Total violations across attribution, meter, invariants, and the
    /// intact probe (perturbed-probe failures are measurements, not
    /// violations).
    pub violations: u64,
}

impl SchemeAudit {
    /// Whether the audit found the scheme healthy.
    pub fn ok(&self) -> bool {
        self.violations == 0
    }

    /// Serialize as a `scheme_audit` record.
    pub fn to_value(&self) -> Value {
        Value::object(vec![
            ("type", Value::from("scheme_audit")),
            ("n", Value::from(self.n)),
            ("k", Value::from(self.k)),
            ("mode", Value::from(self.mode.as_str())),
            (
                "components",
                Value::Array(
                    self.components
                        .iter()
                        .map(ComponentStat::to_value)
                        .collect(),
                ),
            ),
            ("attribution_exact", Value::from(self.attribution_exact)),
            ("resident_total", Value::from(self.resident_total)),
            ("resident_max", Value::from(self.resident_max)),
            ("meter_checked", Value::from(self.meter_checked)),
            ("meter_ok", Value::from(self.meter_ok)),
            (
                "invariants",
                Value::Array(
                    self.invariants
                        .iter()
                        .map(InvariantStat::to_value)
                        .collect(),
                ),
            ),
            ("probe", self.probe.to_value()),
            (
                "perturbed",
                self.perturbed
                    .as_ref()
                    .map_or(Value::Null, PerturbedStat::to_value),
            ),
            ("violations", Value::from(self.violations)),
        ])
    }

    /// Parse a `scheme_audit` record back.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] naming the first missing or ill-typed field,
    /// or an internally inconsistent probe (outcome counts that do not
    /// partition the connected pairs).
    pub fn from_value(v: &Value) -> Result<SchemeAudit, ParseError> {
        if v.get("type").and_then(Value::as_str) != Some("scheme_audit") {
            return Err(ParseError::not_record("scheme_audit"));
        }
        let tag = |e: ParseError| e.for_type("scheme_audit");
        let components = v
            .get("components")
            .and_then(Value::as_array)
            .ok_or_else(|| tag(ParseError::missing("components")))?
            .iter()
            .map(ComponentStat::from_value)
            .collect::<Result<Vec<_>, _>>()
            .map_err(tag)?;
        let invariants = v
            .get("invariants")
            .and_then(Value::as_array)
            .ok_or_else(|| tag(ParseError::missing("invariants")))?
            .iter()
            .map(InvariantStat::from_value)
            .collect::<Result<Vec<_>, _>>()
            .map_err(tag)?;
        let probe = ProbeStat::from_value(
            v.get("probe")
                .ok_or_else(|| tag(ParseError::missing("probe")))?,
        )
        .map_err(tag)?;
        let perturbed = match v.get("perturbed") {
            None | Some(Value::Null) => None,
            Some(p) => Some(PerturbedStat::from_value(p).map_err(tag)?),
        };
        Ok(SchemeAudit {
            n: uint(v, "n").map_err(tag)?,
            k: uint(v, "k").map_err(tag)?,
            mode: text(v, "mode").map_err(tag)?,
            components,
            attribution_exact: boolean(v, "attribution_exact").map_err(tag)?,
            resident_total: uint(v, "resident_total").map_err(tag)?,
            resident_max: uint(v, "resident_max").map_err(tag)?,
            meter_checked: boolean(v, "meter_checked").map_err(tag)?,
            meter_ok: boolean(v, "meter_ok").map_err(tag)?,
            invariants,
            probe,
            perturbed,
            violations: uint(v, "violations").map_err(tag)?,
        })
    }
}

fn uint(v: &Value, key: &str) -> Result<u64, ParseError> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| ParseError::missing(key))
}

fn float(v: &Value, key: &str) -> Result<f64, ParseError> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| ParseError::missing(key))
}

fn boolean(v: &Value, key: &str) -> Result<bool, ParseError> {
    v.get(key)
        .and_then(Value::as_bool)
        .ok_or_else(|| ParseError::missing(key))
}

fn text(v: &Value, key: &str) -> Result<String, ParseError> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| ParseError::missing(key))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_probe() -> ProbeStat {
        ProbeStat {
            pairs: 120,
            connected: 100,
            delivered: 97,
            no_common_tree: 1,
            stuck: 1,
            bad_forward: 1,
            looped: 0,
            undershoots: 0,
            over_bound: 0,
            oracle_undershoots: 0,
            oracle_over_bound: 0,
            mean_stretch: 1.21,
            max_stretch: 3.0,
            full_sweep: false,
        }
    }

    fn sample_audit() -> SchemeAudit {
        SchemeAudit {
            n: 64,
            k: 2,
            mode: "distributed-low-memory".to_string(),
            components: vec![
                ComponentStat::from_words("cluster_membership", true, &[6, 9, 12, 30]),
                ComponentStat::from_words("hopset_edges", false, &[0, 2, 0, 4]),
            ],
            attribution_exact: true,
            resident_total: 4096,
            resident_max: 120,
            meter_checked: true,
            meter_ok: true,
            invariants: vec![InvariantStat {
                name: "dfs_nesting".to_string(),
                checked: 500,
                violations: 0,
            }],
            probe: sample_probe(),
            perturbed: Some(PerturbedStat {
                kill_edges: 0.1,
                kill_vertices: 0.0,
                killed_edges: 13,
                killed_vertices: 0,
                probe: sample_probe(),
                stretch_inflation: 1.08,
            }),
            violations: 3,
        }
    }

    #[test]
    fn component_stat_quantiles() {
        let words: Vec<u64> = (1..=100).collect();
        let s = ComponentStat::from_words("x", true, &words);
        assert_eq!(s.total, 5050);
        assert_eq!(s.max, 100);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 95);
        assert_eq!(s.p99, 99);
        assert!((s.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn round_trips() {
        let audit = sample_audit();
        let parsed =
            SchemeAudit::from_value(&crate::json::parse(&audit.to_value().to_string()).unwrap())
                .unwrap();
        assert_eq!(parsed, audit);
        assert!(!parsed.ok());
        assert!((parsed.probe.reachability() - 0.97).abs() < 1e-9);
    }

    #[test]
    fn none_perturbed_round_trips_as_null() {
        let mut audit = sample_audit();
        audit.perturbed = None;
        let parsed =
            SchemeAudit::from_value(&crate::json::parse(&audit.to_value().to_string()).unwrap())
                .unwrap();
        assert_eq!(parsed.perturbed, None);
    }

    #[test]
    fn rejects_wrong_type_and_missing_fields() {
        let not = Value::object(vec![("type", Value::from("metrics"))]);
        assert!(SchemeAudit::from_value(&not).is_err());
        let mut fields = match sample_audit().to_value() {
            Value::Object(fields) => fields,
            _ => unreachable!(),
        };
        fields.retain(|(k, _)| k != "resident_total");
        let err = SchemeAudit::from_value(&Value::Object(fields)).unwrap_err();
        assert_eq!(err.field.as_deref(), Some("resident_total"));
        assert_eq!(err.record_type.as_deref(), Some("scheme_audit"));
    }

    #[test]
    fn rejects_unbalanced_probe_counts() {
        let mut audit = sample_audit();
        audit.probe.delivered = 50; // outcomes no longer partition `connected`
        let err =
            SchemeAudit::from_value(&crate::json::parse(&audit.to_value().to_string()).unwrap())
                .unwrap_err();
        assert_eq!(err.field.as_deref(), Some("delivered"));
    }
}
