//! The query-serving record: one `serve_summary` JSONL line per serving run.
//!
//! The build-side records price construction; this record prices the
//! *serving lifetime* — a persisted scheme answering route / distance /
//! trace queries from a worker pool. Columns split the same way the bench
//! suite does: the simulated side (query mix, answered/unreachable split,
//! aggregate weight and hops, cross-check verdicts, an order-sensitive
//! answer checksum) is seed-pinned and must be byte-identical at any thread
//! count; the wall side (QPS, nearest-rank latency quantiles) is
//! machine-dependent and advisory. [`ServeSummary::from_value`] re-validates
//! the partition identities (`queries = route + distance + trace`,
//! `queries = answered + unreachable + errors`, `mismatches ≤ checks ≤
//! queries`) on parse, so a tampered or truncated report fails loudly.

use crate::error::ParseError;
use crate::json::Value;

/// Summary of one serving run: a fixed query stream answered by a pool.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeSummary {
    /// Workload model name (`uniform`, `hotspot`, `adversarial`).
    pub workload: String,
    /// Loop discipline: `closed` (back-to-back batches) or `open`
    /// (batches dispatched on a timed schedule at an offered rate).
    pub mode: String,
    /// Worker threads serving the stream.
    pub threads: u64,
    /// Queries per dispatched batch.
    pub batch: u64,
    /// Total queries served.
    pub queries: u64,
    /// Stream seed (workload pairs, query-kind mix, cross-check sampling).
    pub seed: u64,
    /// Configured fraction of answers cross-checked centrally.
    pub check_rate: f64,
    /// Queries asking for a route summary.
    pub route_queries: u64,
    /// Queries asking for a distance estimate.
    pub distance_queries: u64,
    /// Queries asking for a full path trace.
    pub trace_queries: u64,
    /// Queries answered with a finite route/estimate.
    pub answered: u64,
    /// Queries whose endpoints share no tree (infinite estimate).
    pub unreachable: u64,
    /// Queries the server failed internally (must be 0; counted, not thrown).
    pub errors: u64,
    /// Answers cross-checked against the central router/oracle.
    pub checks: u64,
    /// Cross-checks that disagreed with the central answer (must be 0).
    pub mismatches: u64,
    /// Sum of routed weights / finite distance estimates over answers.
    pub total_weight: u64,
    /// Sum of hop counts over route/trace answers.
    pub total_hops: u64,
    /// FNV-1a checksum over every answer in query order, xor-folded to 32
    /// bits so the f64-backed JSON channel carries it exactly — the
    /// strongest thread-invariance witness.
    pub answer_checksum: u64,
    /// Offered rate in queries/s for open-loop runs (0 for closed loop).
    pub offered_qps: f64,
    /// Serving wall time (advisory, machine-dependent).
    pub wall_ns: u64,
    /// Achieved queries per second (advisory).
    pub qps: f64,
    /// Nearest-rank median per-query latency in ns (advisory).
    pub p50_ns: u64,
    /// Nearest-rank 95th-percentile per-query latency in ns (advisory).
    pub p95_ns: u64,
    /// Nearest-rank 99th-percentile per-query latency in ns (advisory).
    pub p99_ns: u64,
}

impl ServeSummary {
    /// The partition identities every serving run must satisfy.
    pub fn consistent(&self) -> bool {
        self.queries == self.route_queries + self.distance_queries + self.trace_queries
            && self.queries == self.answered + self.unreachable + self.errors
            && self.mismatches <= self.checks
            && self.checks <= self.queries
    }

    /// Serialize as a `serve_summary` JSONL record; `extra` fields (e.g. a
    /// sweep index) are appended to the top-level object.
    pub fn to_value(&self, extra: &[(&str, Value)]) -> Value {
        let mut fields = vec![
            ("type", Value::from("serve_summary")),
            ("workload", Value::from(self.workload.as_str())),
            ("mode", Value::from(self.mode.as_str())),
            ("threads", Value::from(self.threads)),
            ("batch", Value::from(self.batch)),
            ("queries", Value::from(self.queries)),
            ("seed", Value::from(self.seed)),
            ("check_rate", Value::from(self.check_rate)),
            ("route_queries", Value::from(self.route_queries)),
            ("distance_queries", Value::from(self.distance_queries)),
            ("trace_queries", Value::from(self.trace_queries)),
            ("answered", Value::from(self.answered)),
            ("unreachable", Value::from(self.unreachable)),
            ("errors", Value::from(self.errors)),
            ("checks", Value::from(self.checks)),
            ("mismatches", Value::from(self.mismatches)),
            ("total_weight", Value::from(self.total_weight)),
            ("total_hops", Value::from(self.total_hops)),
            ("answer_checksum", Value::from(self.answer_checksum)),
            ("offered_qps", Value::from(self.offered_qps)),
            ("wall_ns", Value::from(self.wall_ns)),
            ("qps", Value::from(self.qps)),
            ("p50_ns", Value::from(self.p50_ns)),
            ("p95_ns", Value::from(self.p95_ns)),
            ("p99_ns", Value::from(self.p99_ns)),
        ];
        for (k, v) in extra {
            fields.push((k, v.clone()));
        }
        Value::object(fields)
    }

    /// Parse a `serve_summary` record back, re-checking the partition
    /// identities.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] naming the first missing or ill-typed
    /// field, or a violated identity.
    pub fn from_value(v: &Value) -> Result<ServeSummary, ParseError> {
        if v.get("type").and_then(Value::as_str) != Some("serve_summary") {
            return Err(ParseError::not_record("serve_summary"));
        }
        let int = |key: &str| {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| ParseError::missing(key).for_type("serve_summary"))
        };
        let float = |key: &str| {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| ParseError::missing(key).for_type("serve_summary"))
        };
        let text = |key: &str| {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| ParseError::missing(key).for_type("serve_summary"))
        };
        let summary = ServeSummary {
            workload: text("workload")?,
            mode: text("mode")?,
            threads: int("threads")?,
            batch: int("batch")?,
            queries: int("queries")?,
            seed: int("seed")?,
            check_rate: float("check_rate")?,
            route_queries: int("route_queries")?,
            distance_queries: int("distance_queries")?,
            trace_queries: int("trace_queries")?,
            answered: int("answered")?,
            unreachable: int("unreachable")?,
            errors: int("errors")?,
            checks: int("checks")?,
            mismatches: int("mismatches")?,
            total_weight: int("total_weight")?,
            total_hops: int("total_hops")?,
            answer_checksum: int("answer_checksum")?,
            offered_qps: float("offered_qps")?,
            wall_ns: int("wall_ns")?,
            qps: float("qps")?,
            p50_ns: int("p50_ns")?,
            p95_ns: int("p95_ns")?,
            p99_ns: int("p99_ns")?,
        };
        if !summary.consistent() {
            return Err(ParseError::new(format!(
                "violates partition identities: queries {} vs kinds {}+{}+{}, \
                 outcomes {}+{}+{}, mismatches {} ≤ checks {} ≤ queries {}",
                summary.queries,
                summary.route_queries,
                summary.distance_queries,
                summary.trace_queries,
                summary.answered,
                summary.unreachable,
                summary.errors,
                summary.mismatches,
                summary.checks,
                summary.queries,
            ))
            .for_type("serve_summary"));
        }
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> ServeSummary {
        ServeSummary {
            workload: "hotspot".to_string(),
            mode: "closed".to_string(),
            threads: 4,
            batch: 64,
            queries: 4096,
            seed: 0x5E12E,
            check_rate: 0.05,
            route_queries: 2458,
            distance_queries: 1024,
            trace_queries: 614,
            answered: 4090,
            unreachable: 6,
            errors: 0,
            checks: 201,
            mismatches: 0,
            total_weight: 123_456,
            total_hops: 9_876,
            answer_checksum: 0xDEAD_BEEF_CAFE,
            offered_qps: 0.0,
            wall_ns: 5_000_000,
            qps: 819_200.0,
            p50_ns: 700,
            p95_ns: 1_900,
            p99_ns: 4_200,
        }
    }

    #[test]
    fn summary_round_trips_through_json() {
        let s = sample();
        assert!(s.consistent());
        let text = s.to_value(&[("sweep", Value::from(2u64))]).to_string();
        let v = json::parse(&text).unwrap();
        assert_eq!(v.get("sweep").unwrap().as_u64(), Some(2));
        let back = ServeSummary::from_value(&v).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parse_rejects_partition_violation() {
        let mut s = sample();
        s.answered += 1; // outcomes no longer partition the stream
        assert!(!s.consistent());
        let v = s.to_value(&[]);
        let err = ServeSummary::from_value(&v).unwrap_err();
        assert!(err.to_string().contains("partition"), "{err}");
    }

    #[test]
    fn parse_rejects_check_overflow() {
        let mut s = sample();
        s.mismatches = s.checks + 1; // more mismatches than checks
        let v = s.to_value(&[]);
        assert!(ServeSummary::from_value(&v).is_err());
    }

    #[test]
    fn parse_rejects_wrong_type() {
        let v = Value::object(vec![("type", Value::from("span"))]);
        assert!(ServeSummary::from_value(&v).is_err());
    }
}
