//! The steady-state traffic record: one `traffic_summary` JSONL line per
//! scenario run.
//!
//! The flight recorder ([`crate::flight`]) prices individual journeys; this
//! record summarizes an *open-loop* run — packets injected every round at a
//! configured rate into finite per-vertex queues — by the quantities a
//! traffic plane is judged on: delivered throughput, drop/loss split,
//! end-to-end latency and pure queueing-delay distributions, peak queue
//! occupancy, and stretch. [`TrafficSummary::from_value`] re-validates the
//! packet-conservation identity (`injected = delivered + dropped +
//! in_flight`) on parse, so a tampered or truncated report fails loudly.

use crate::error::ParseError;
use crate::flight::LoadStats;
use crate::json::Value;

/// Summary of one steady-state traffic run at one offered rate.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrafficSummary {
    /// Workload model name (e.g. `uniform`, `gravity`, `hotspot`, `worst`).
    pub workload: String,
    /// Arrival process name (e.g. `fixed`, `bernoulli`).
    pub arrival: String,
    /// Offered rate in packets per round (network-wide).
    pub rate: f64,
    /// Rounds during which the sources injected.
    pub inject_rounds: u64,
    /// Engine rounds actually executed (injection plus drain).
    pub sim_rounds: u64,
    /// Per-port queue capacity in packets.
    pub queue_cap: u64,
    /// Drop policy name (`tail-drop` or `oldest-drop`).
    pub drop_policy: String,
    /// Pairs the workload offered, including undeliverable ones.
    pub offered: u64,
    /// Packets actually injected (offered minus undeliverable).
    pub injected: u64,
    /// Offered pairs with no common tree; never injected.
    pub undeliverable: u64,
    /// Packets that reached their destination.
    pub delivered: u64,
    /// Packets dropped by a full queue.
    pub dropped_capacity: u64,
    /// Packets dropped by a stuck forwarding rule or missing port.
    pub dropped_stuck: u64,
    /// Packets still queued or on the wire when the run was cut off
    /// (0 whenever the run drained).
    pub in_flight: u64,
    /// Whether the run drained before the round cap.
    pub drained: bool,
    /// Delivered packets per executed round.
    pub throughput: f64,
    /// Distribution of per-packet delivery latency in rounds
    /// (injection to delivery: hops plus queueing).
    pub latency: LoadStats,
    /// Distribution of per-packet pure queueing delay in rounds
    /// (latency minus hop count).
    pub queue_delay: LoadStats,
    /// Largest number of packets queued network-wide at any round end.
    pub peak_queue_packets: u64,
    /// Largest number of queued words network-wide at any round end.
    pub peak_queue_words: u64,
    /// Mean routed-weight / true-distance over delivered packets.
    pub stretch_mean: f64,
    /// Worst routed-weight / true-distance over delivered packets.
    pub stretch_max: f64,
}

impl TrafficSummary {
    /// Total packets lost after injection, either cause.
    pub fn dropped(&self) -> u64 {
        self.dropped_capacity + self.dropped_stuck
    }

    /// The packet-conservation identity every run must satisfy.
    pub fn conserved(&self) -> bool {
        self.injected == self.delivered + self.dropped() + self.in_flight
            && self.offered == self.injected + self.undeliverable
    }

    /// Serialize as a `traffic_summary` JSONL record; `extra` fields (e.g.
    /// a sweep index) are appended to the top-level object.
    pub fn to_value(&self, extra: &[(&str, Value)]) -> Value {
        let mut fields = vec![
            ("type", Value::from("traffic_summary")),
            ("workload", Value::from(self.workload.as_str())),
            ("arrival", Value::from(self.arrival.as_str())),
            ("rate", Value::from(self.rate)),
            ("inject_rounds", Value::from(self.inject_rounds)),
            ("sim_rounds", Value::from(self.sim_rounds)),
            ("queue_cap", Value::from(self.queue_cap)),
            ("drop_policy", Value::from(self.drop_policy.as_str())),
            ("offered", Value::from(self.offered)),
            ("injected", Value::from(self.injected)),
            ("undeliverable", Value::from(self.undeliverable)),
            ("delivered", Value::from(self.delivered)),
            ("dropped_capacity", Value::from(self.dropped_capacity)),
            ("dropped_stuck", Value::from(self.dropped_stuck)),
            ("in_flight", Value::from(self.in_flight)),
            ("drained", Value::from(self.drained)),
            ("throughput", Value::from(self.throughput)),
            ("latency", self.latency.to_value()),
            ("queue_delay", self.queue_delay.to_value()),
            ("peak_queue_packets", Value::from(self.peak_queue_packets)),
            ("peak_queue_words", Value::from(self.peak_queue_words)),
            ("stretch_mean", Value::from(self.stretch_mean)),
            ("stretch_max", Value::from(self.stretch_max)),
        ];
        for (k, v) in extra {
            fields.push((k, v.clone()));
        }
        Value::object(fields)
    }

    /// Parse a `traffic_summary` record back, re-checking conservation.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] naming the first missing or ill-typed
    /// field, or a violation of the conservation identity.
    pub fn from_value(v: &Value) -> Result<TrafficSummary, ParseError> {
        if v.get("type").and_then(Value::as_str) != Some("traffic_summary") {
            return Err(ParseError::not_record("traffic_summary"));
        }
        let int = |key: &str| {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| ParseError::missing(key).for_type("traffic_summary"))
        };
        let float = |key: &str| {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| ParseError::missing(key).for_type("traffic_summary"))
        };
        let text = |key: &str| {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| ParseError::missing(key).for_type("traffic_summary"))
        };
        let dist = |key: &str| {
            v.get(key)
                .ok_or_else(|| ParseError::missing(key).for_type("traffic_summary"))
                .and_then(|d| LoadStats::from_value(d).map_err(|e| e.for_type("traffic_summary")))
        };
        let summary = TrafficSummary {
            workload: text("workload")?,
            arrival: text("arrival")?,
            rate: float("rate")?,
            inject_rounds: int("inject_rounds")?,
            sim_rounds: int("sim_rounds")?,
            queue_cap: int("queue_cap")?,
            drop_policy: text("drop_policy")?,
            offered: int("offered")?,
            injected: int("injected")?,
            undeliverable: int("undeliverable")?,
            delivered: int("delivered")?,
            dropped_capacity: int("dropped_capacity")?,
            dropped_stuck: int("dropped_stuck")?,
            in_flight: int("in_flight")?,
            drained: v
                .get("drained")
                .and_then(Value::as_bool)
                .ok_or_else(|| ParseError::missing("drained").for_type("traffic_summary"))?,
            throughput: float("throughput")?,
            latency: dist("latency")?,
            queue_delay: dist("queue_delay")?,
            peak_queue_packets: int("peak_queue_packets")?,
            peak_queue_words: int("peak_queue_words")?,
            stretch_mean: float("stretch_mean")?,
            stretch_max: float("stretch_max")?,
        };
        if !summary.conserved() {
            return Err(ParseError::new(format!(
                "violates conservation: injected {} != \
                 delivered {} + dropped {} + in_flight {} (offered {}, undeliverable {})",
                summary.injected,
                summary.delivered,
                summary.dropped(),
                summary.in_flight,
                summary.offered,
                summary.undeliverable,
            ))
            .for_type("traffic_summary"));
        }
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> TrafficSummary {
        TrafficSummary {
            workload: "hotspot".to_string(),
            arrival: "fixed".to_string(),
            rate: 2.5,
            inject_rounds: 64,
            sim_rounds: 80,
            queue_cap: 8,
            drop_policy: "tail-drop".to_string(),
            offered: 160,
            injected: 158,
            undeliverable: 2,
            delivered: 150,
            dropped_capacity: 5,
            dropped_stuck: 3,
            in_flight: 0,
            drained: true,
            throughput: 150.0 / 80.0,
            latency: LoadStats::from_loads(&[3, 4, 5, 9]),
            queue_delay: LoadStats::from_loads(&[0, 1, 2, 6]),
            peak_queue_packets: 12,
            peak_queue_words: 96,
            stretch_mean: 1.2,
            stretch_max: 2.8,
        }
    }

    #[test]
    fn summary_round_trips_through_json() {
        let s = sample();
        assert!(s.conserved());
        let text = s.to_value(&[("sweep", Value::from(3u64))]).to_string();
        let v = json::parse(&text).unwrap();
        assert_eq!(v.get("sweep").unwrap().as_u64(), Some(3));
        let back = TrafficSummary::from_value(&v).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parse_rejects_conservation_violation() {
        let mut s = sample();
        s.delivered += 1; // injected no longer balances
        assert!(!s.conserved());
        let v = s.to_value(&[]);
        let err = TrafficSummary::from_value(&v).unwrap_err();
        assert!(err.to_string().contains("conservation"), "{err}");
    }

    #[test]
    fn parse_rejects_wrong_type() {
        let v = Value::object(vec![("type", Value::from("span"))]);
        assert!(TrafficSummary::from_value(&v).is_err());
    }
}
