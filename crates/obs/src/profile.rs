//! Engine profiler: per-round, per-worker phase attribution.
//!
//! The CONGEST engine's round loop tiles into phases — task dispatch,
//! vertex compute, outbox scatter/sort, coordinator merge, and barrier
//! idle — and [`EngineProfile`] accumulates how long each worker spends
//! in each, using the monotonic [`Stopwatch`](crate::metrics::Stopwatch)
//! an engine run already holds. Storage is a fixed-capacity ring of
//! [`PhaseSample`]s plus flat per-phase counters, so steady-state
//! profiling allocates nothing per round.
//!
//! Two export views:
//!
//! * [`EngineProfile::chrome_trace`] — a Chrome trace-event JSON array
//!   (one track per worker) loadable in Perfetto / `chrome://tracing`.
//! * [`EngineProfile::summary`] → [`ProfileSummary::to_value`] — the
//!   `engine_profile` JSONL record with per-phase wall totals, p50/p95,
//!   per-worker utilization, and the imbalance ratio.

use crate::error::ParseError;
use crate::json::Value;
use crate::metrics::quantile_ns;

/// One attributable slice of the round loop.
///
/// `Setup` covers everything before the first round executes (task
/// construction, worker spawn, initial-message injection) so the
/// coordinator track tiles the whole engine wall and per-phase totals
/// sum to the run's wall time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Pre-round work: arenas, task construction, worker spawn, init.
    Setup,
    /// Coordinator fan-out: sending tasks to worker channels.
    Dispatch,
    /// Vertex protocol execution over a chunk.
    Compute,
    /// Counting-sort scatter of outboxes into delivery arenas.
    Scatter,
    /// Coordinator fold of per-chunk stats and congestion accounting.
    Merge,
    /// Barrier / channel wait with no work to do.
    Idle,
}

/// Number of [`Phase`] variants (array sizing).
pub const PHASES: usize = 6;

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; PHASES] = [
        Phase::Setup,
        Phase::Dispatch,
        Phase::Compute,
        Phase::Scatter,
        Phase::Merge,
        Phase::Idle,
    ];

    /// Stable dense index, `0..PHASES`.
    pub fn index(self) -> usize {
        match self {
            Phase::Setup => 0,
            Phase::Dispatch => 1,
            Phase::Compute => 2,
            Phase::Scatter => 3,
            Phase::Merge => 4,
            Phase::Idle => 5,
        }
    }

    /// Stable name used in trace events and JSONL records.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Setup => "setup",
            Phase::Dispatch => "dispatch",
            Phase::Compute => "compute",
            Phase::Scatter => "scatter",
            Phase::Merge => "merge",
            Phase::Idle => "idle",
        }
    }

    /// Inverse of [`Phase::name`].
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.iter().copied().find(|p| p.name() == name)
    }
}

/// One timed interval on one worker's track.
///
/// `start_ns` is relative to the profile's epoch (the recorder's or the
/// run's start stopwatch), so samples from one run share a timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseSample {
    /// Round the interval belongs to (`0` = the init phase).
    pub round: u64,
    /// Track: `0` is the coordinator, `1..` are pool workers.
    pub worker: u32,
    /// What the time was spent on.
    pub phase: Phase,
    /// Interval start, nanoseconds since the profile epoch.
    pub start_ns: u64,
    /// Interval length in nanoseconds.
    pub dur_ns: u64,
}

/// Fixed sample-ring capacity; beyond it the oldest samples are
/// overwritten (counted in [`EngineProfile::dropped`]) while the flat
/// per-phase totals stay exact.
pub const RING_CAP: usize = 32_768;

/// Accumulated phase timings for one or more engine runs.
///
/// Flat totals (`totals_ns`, `coord_ns`, `counts`, `busy_ns`) are exact
/// over every recorded sample; the ring keeps the most recent
/// [`RING_CAP`] samples for quantiles and trace export.
#[derive(Clone, Debug, Default)]
pub struct EngineProfile {
    /// Distinct worker tracks seen (coordinator included).
    pub workers: usize,
    /// Highest round index recorded.
    pub rounds: u64,
    /// Engine runs folded into this profile.
    pub runs: u64,
    /// Summed engine wall time across runs, nanoseconds.
    pub engine_wall_ns: u64,
    /// Exact per-phase wall totals over all workers, by `Phase::index`.
    pub totals_ns: [u64; PHASES],
    /// Exact per-phase totals on the coordinator track only. The
    /// coordinator's phases tile the run, so these sum to ~wall time.
    pub coord_ns: [u64; PHASES],
    /// Exact per-phase sample counts, by `Phase::index`.
    pub counts: [u64; PHASES],
    /// Per-worker non-idle time, index = worker track.
    pub busy_ns: Vec<u64>,
    /// Most recent samples, oldest first once wrapped (see `head`).
    ring: Vec<PhaseSample>,
    /// Next overwrite position once the ring is full.
    head: usize,
    /// Samples evicted from the ring (totals still include them).
    pub dropped: u64,
}

impl EngineProfile {
    /// An empty profile expecting `workers` tracks (grown on demand).
    pub fn new(workers: usize) -> EngineProfile {
        EngineProfile {
            workers,
            busy_ns: vec![0; workers],
            ring: Vec::new(),
            ..EngineProfile::default()
        }
    }

    /// Record one interval. Zero-length intervals still count (they
    /// mark that the phase ran) but add nothing to the totals.
    pub fn record(&mut self, round: u64, worker: u32, phase: Phase, start_ns: u64, dur_ns: u64) {
        let i = phase.index();
        self.totals_ns[i] += dur_ns;
        self.counts[i] += 1;
        if worker == 0 {
            self.coord_ns[i] += dur_ns;
        }
        let w = worker as usize;
        if w >= self.busy_ns.len() {
            self.busy_ns.resize(w + 1, 0);
        }
        self.workers = self.workers.max(w + 1);
        if phase != Phase::Idle {
            self.busy_ns[w] += dur_ns;
        }
        self.rounds = self.rounds.max(round);
        self.push_sample(PhaseSample {
            round,
            worker,
            phase,
            start_ns,
            dur_ns,
        });
    }

    fn push_sample(&mut self, s: PhaseSample) {
        if self.ring.len() < RING_CAP {
            self.ring.push(s);
        } else {
            self.ring[self.head] = s;
            self.head = (self.head + 1) % RING_CAP;
            self.dropped += 1;
        }
    }

    /// Close out one engine run of `wall_ns` nanoseconds.
    pub fn record_run(&mut self, wall_ns: u64) {
        self.runs += 1;
        self.engine_wall_ns += wall_ns;
    }

    /// Fold another profile (e.g. from a later run) into this one.
    pub fn absorb(&mut self, other: &EngineProfile) {
        self.workers = self.workers.max(other.workers);
        self.rounds = self.rounds.max(other.rounds);
        self.runs += other.runs;
        self.engine_wall_ns += other.engine_wall_ns;
        for i in 0..PHASES {
            self.totals_ns[i] += other.totals_ns[i];
            self.coord_ns[i] += other.coord_ns[i];
            self.counts[i] += other.counts[i];
        }
        if self.busy_ns.len() < other.busy_ns.len() {
            self.busy_ns.resize(other.busy_ns.len(), 0);
        }
        for (w, ns) in other.busy_ns.iter().enumerate() {
            self.busy_ns[w] += ns;
        }
        self.dropped += other.dropped;
        for s in other.samples() {
            self.push_sample(*s);
        }
    }

    /// Retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &PhaseSample> {
        let (tail, head) = self.ring.split_at(self.head.min(self.ring.len()));
        head.iter().chain(tail.iter())
    }

    /// Number of retained samples.
    pub fn sample_count(&self) -> usize {
        self.ring.len()
    }

    /// Chrome trace-event JSON: an array of `ph:"M"` thread-name
    /// metadata events (one per worker track) followed by `ph:"X"`
    /// complete events with microsecond `ts`/`dur`, `pid` 0, and
    /// `tid` = worker track. Loadable in Perfetto / `chrome://tracing`.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::from("[");
        let mut first = true;
        let mut push = |out: &mut String, event: &str| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push('\n');
            out.push_str(event);
        };
        for w in 0..self.workers {
            let name = if w == 0 {
                "coordinator".to_string()
            } else {
                format!("worker {w}")
            };
            push(
                &mut out,
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{w},\
                     \"args\":{{\"name\":\"{name}\"}}}}"
                ),
            );
        }
        for s in self.samples() {
            let ts = s.start_ns as f64 / 1000.0;
            let dur = s.dur_ns as f64 / 1000.0;
            push(
                &mut out,
                &format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":0,\"tid\":{},\"args\":{{\"round\":{}}}}}",
                    s.phase.name(),
                    Value::Num(ts),
                    Value::Num(dur),
                    s.worker,
                    s.round
                ),
            );
        }
        out.push_str("\n]\n");
        out
    }

    /// Aggregate view for the `engine_profile` record and CLI tables.
    pub fn summary(&self) -> ProfileSummary {
        let mut phases = Vec::new();
        let mut window: Vec<u64> = Vec::new();
        for phase in Phase::ALL {
            let i = phase.index();
            if self.counts[i] == 0 {
                continue;
            }
            window.clear();
            window.extend(
                self.samples()
                    .filter(|s| s.phase == phase)
                    .map(|s| s.dur_ns),
            );
            phases.push(PhaseStat {
                phase,
                total_ns: self.totals_ns[i],
                coord_ns: self.coord_ns[i],
                p50_ns: quantile_ns(&window, 0.50),
                p95_ns: quantile_ns(&window, 0.95),
                samples: self.counts[i],
            });
        }
        let worker_stats: Vec<WorkerStat> = self
            .busy_ns
            .iter()
            .enumerate()
            .map(|(w, &busy)| WorkerStat {
                worker: w,
                busy_ns: busy,
                utilization: if self.engine_wall_ns > 0 {
                    busy as f64 / self.engine_wall_ns as f64
                } else {
                    0.0
                },
            })
            .collect();
        let max_busy = self.busy_ns.iter().copied().max().unwrap_or(0);
        let mean_busy = if self.busy_ns.is_empty() {
            0.0
        } else {
            self.busy_ns.iter().sum::<u64>() as f64 / self.busy_ns.len() as f64
        };
        let imbalance = if mean_busy > 0.0 {
            max_busy as f64 / mean_busy
        } else {
            1.0
        };
        let coord_total: u64 = self.coord_ns.iter().sum();
        let coverage = if self.engine_wall_ns > 0 {
            coord_total as f64 / self.engine_wall_ns as f64
        } else {
            0.0
        };
        ProfileSummary {
            workers: self.workers,
            runs: self.runs,
            rounds: self.rounds,
            engine_wall_ns: self.engine_wall_ns,
            phases,
            worker_stats,
            imbalance,
            coverage,
            dropped_samples: self.dropped,
        }
    }
}

/// Aggregate stats for one phase across all workers.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseStat {
    /// Which phase.
    pub phase: Phase,
    /// Exact wall total over all workers, nanoseconds.
    pub total_ns: u64,
    /// Exact wall total on the coordinator track, nanoseconds.
    pub coord_ns: u64,
    /// Median interval length over the retained sample window.
    pub p50_ns: u64,
    /// 95th-percentile interval length over the retained window.
    pub p95_ns: u64,
    /// Exact number of recorded intervals.
    pub samples: u64,
}

/// One worker track's share of the run.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerStat {
    /// Worker track (`0` = coordinator).
    pub worker: usize,
    /// Non-idle nanoseconds on this track.
    pub busy_ns: u64,
    /// `busy_ns / engine_wall_ns`.
    pub utilization: f64,
}

/// The `engine_profile` JSONL record, round-trippable via
/// [`ProfileSummary::to_value`] / [`ProfileSummary::from_value`].
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileSummary {
    /// Worker tracks (coordinator included).
    pub workers: usize,
    /// Engine runs folded into the profile.
    pub runs: u64,
    /// Highest round index recorded.
    pub rounds: u64,
    /// Summed engine wall time across runs, nanoseconds.
    pub engine_wall_ns: u64,
    /// Per-phase aggregates, in [`Phase::ALL`] order (present phases only).
    pub phases: Vec<PhaseStat>,
    /// Per-worker busy time and utilization.
    pub worker_stats: Vec<WorkerStat>,
    /// Max worker busy time over mean worker busy time (`1.0` = balanced).
    pub imbalance: f64,
    /// Coordinator phase totals over engine wall (how much of the run
    /// the phase tiling explains; ~1.0 when attribution is complete).
    pub coverage: f64,
    /// Samples evicted from the quantile window (totals stay exact).
    pub dropped_samples: u64,
}

impl ProfileSummary {
    /// Serialize as an `engine_profile` record.
    pub fn to_value(&self) -> Value {
        let phases: Vec<Value> = self
            .phases
            .iter()
            .map(|p| {
                Value::object(vec![
                    ("phase", Value::Str(p.phase.name().to_string())),
                    ("total_ns", Value::Num(p.total_ns as f64)),
                    ("coord_ns", Value::Num(p.coord_ns as f64)),
                    ("p50_ns", Value::Num(p.p50_ns as f64)),
                    ("p95_ns", Value::Num(p.p95_ns as f64)),
                    ("samples", Value::Num(p.samples as f64)),
                ])
            })
            .collect();
        let workers: Vec<Value> = self
            .worker_stats
            .iter()
            .map(|w| {
                Value::object(vec![
                    ("worker", Value::Num(w.worker as f64)),
                    ("busy_ns", Value::Num(w.busy_ns as f64)),
                    ("utilization", Value::Num(w.utilization)),
                ])
            })
            .collect();
        Value::object(vec![
            ("type", Value::Str("engine_profile".to_string())),
            ("workers", Value::Num(self.workers as f64)),
            ("runs", Value::Num(self.runs as f64)),
            ("rounds", Value::Num(self.rounds as f64)),
            ("engine_wall_ns", Value::Num(self.engine_wall_ns as f64)),
            ("imbalance", Value::Num(self.imbalance)),
            ("coverage", Value::Num(self.coverage)),
            ("dropped_samples", Value::Num(self.dropped_samples as f64)),
            ("phases", Value::Array(phases)),
            ("worker_stats", Value::Array(workers)),
        ])
    }

    /// Parse an `engine_profile` record.
    pub fn from_value(v: &Value) -> Result<ProfileSummary, ParseError> {
        let wrap = |e: ParseError| e.for_type("engine_profile");
        if v.get("type").and_then(Value::as_str) != Some("engine_profile") {
            return Err(ParseError::not_record("engine_profile"));
        }
        let u64_field = |key: &str| -> Result<u64, ParseError> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| wrap(ParseError::missing(key)))
        };
        let f64_field = |key: &str| -> Result<f64, ParseError> {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| wrap(ParseError::missing(key)))
        };
        let mut phases = Vec::new();
        for p in v
            .get("phases")
            .and_then(Value::as_array)
            .ok_or_else(|| wrap(ParseError::missing("phases")))?
        {
            let name = p
                .get("phase")
                .and_then(Value::as_str)
                .ok_or_else(|| wrap(ParseError::missing("phase")))?;
            let phase = Phase::from_name(name)
                .ok_or_else(|| wrap(ParseError::bad("phase", format!("unknown phase '{name}'"))))?;
            let field = |key: &str| -> Result<u64, ParseError> {
                p.get(key)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| wrap(ParseError::missing(key)))
            };
            phases.push(PhaseStat {
                phase,
                total_ns: field("total_ns")?,
                coord_ns: field("coord_ns")?,
                p50_ns: field("p50_ns")?,
                p95_ns: field("p95_ns")?,
                samples: field("samples")?,
            });
        }
        let mut worker_stats = Vec::new();
        for w in v
            .get("worker_stats")
            .and_then(Value::as_array)
            .ok_or_else(|| wrap(ParseError::missing("worker_stats")))?
        {
            worker_stats.push(WorkerStat {
                worker: w
                    .get("worker")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| wrap(ParseError::missing("worker")))?
                    as usize,
                busy_ns: w
                    .get("busy_ns")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| wrap(ParseError::missing("busy_ns")))?,
                utilization: w
                    .get("utilization")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| wrap(ParseError::missing("utilization")))?,
            });
        }
        Ok(ProfileSummary {
            workers: u64_field("workers")? as usize,
            runs: u64_field("runs")?,
            rounds: u64_field("rounds")?,
            engine_wall_ns: u64_field("engine_wall_ns")?,
            phases,
            worker_stats,
            imbalance: f64_field("imbalance")?,
            coverage: f64_field("coverage")?,
            dropped_samples: u64_field("dropped_samples")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_profile() -> EngineProfile {
        let mut p = EngineProfile::new(2);
        p.record(0, 0, Phase::Setup, 0, 500);
        p.record(1, 0, Phase::Dispatch, 500, 100);
        p.record(1, 0, Phase::Compute, 600, 1_000);
        p.record(1, 1, Phase::Compute, 600, 1_400);
        p.record(1, 0, Phase::Idle, 1_600, 400);
        p.record(1, 1, Phase::Idle, 2_000, 50);
        p.record(1, 0, Phase::Scatter, 2_000, 300);
        p.record(1, 0, Phase::Merge, 2_300, 200);
        p.record_run(2_500);
        p
    }

    #[test]
    fn totals_and_busy_accumulate_exactly() {
        let p = sample_profile();
        assert_eq!(p.totals_ns[Phase::Compute.index()], 2_400);
        assert_eq!(p.coord_ns[Phase::Compute.index()], 1_000);
        assert_eq!(p.busy_ns[0], 500 + 100 + 1_000 + 300 + 200);
        assert_eq!(p.busy_ns[1], 1_400);
        assert_eq!(p.rounds, 1);
        assert_eq!(p.sample_count(), 8);
    }

    #[test]
    fn coordinator_phases_tile_the_wall() {
        let p = sample_profile();
        let coord: u64 = p.coord_ns.iter().sum();
        assert_eq!(coord, 2_500);
        let s = p.summary();
        assert!((s.coverage - 1.0).abs() < 1e-9, "coverage {}", s.coverage);
    }

    #[test]
    fn imbalance_is_max_over_mean_busy() {
        let p = sample_profile();
        let s = p.summary();
        let mean = (2_100.0 + 1_400.0) / 2.0;
        assert!((s.imbalance - 2_100.0 / mean).abs() < 1e-9);
        assert!((s.worker_stats[0].utilization - 2_100.0 / 2_500.0).abs() < 1e-9);
    }

    #[test]
    fn ring_wraps_and_counts_drops_without_losing_totals() {
        let mut p = EngineProfile::new(1);
        let n = RING_CAP as u64 + 10;
        for i in 0..n {
            p.record(i, 0, Phase::Compute, i * 10, 10);
        }
        assert_eq!(p.sample_count(), RING_CAP);
        assert_eq!(p.dropped, 10);
        assert_eq!(p.totals_ns[Phase::Compute.index()], n * 10);
        // Oldest-first iteration: the first retained sample is #10.
        assert_eq!(p.samples().next().unwrap().round, 10);
        let last = p.samples().last().unwrap();
        assert_eq!(last.round, n - 1);
    }

    #[test]
    fn absorb_folds_runs() {
        let mut a = sample_profile();
        let b = sample_profile();
        a.absorb(&b);
        assert_eq!(a.runs, 2);
        assert_eq!(a.engine_wall_ns, 5_000);
        assert_eq!(a.totals_ns[Phase::Compute.index()], 4_800);
        assert_eq!(a.busy_ns[1], 2_800);
        assert_eq!(a.sample_count(), 16);
    }

    #[test]
    fn engine_profile_record_round_trips() {
        let s = sample_profile().summary();
        let v = s.to_value();
        let text = v.to_string();
        let parsed = json::parse(&text).expect("record must be valid JSON");
        let back = ProfileSummary::from_value(&parsed).expect("round trip");
        assert_eq!(back, s);
    }

    #[test]
    fn from_value_rejects_wrong_type_with_context() {
        let v = Value::object(vec![("type", Value::Str("span".to_string()))]);
        let e = ProfileSummary::from_value(&v).unwrap_err();
        assert_eq!(e.record_type.as_deref(), Some("engine_profile"));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_required_keys() {
        let p = sample_profile();
        let trace = p.chrome_trace();
        let v = json::parse(&trace).expect("trace must be valid JSON");
        let events = v.as_array().expect("trace is an array");
        // 2 metadata events + 8 samples.
        assert_eq!(events.len(), 10);
        for e in events {
            let ph = e.get("ph").and_then(Value::as_str).expect("ph");
            assert!(e.get("pid").and_then(Value::as_u64).is_some());
            assert!(e.get("tid").and_then(Value::as_u64).is_some());
            if ph == "X" {
                assert!(e.get("ts").and_then(Value::as_f64).is_some());
                assert!(e.get("dur").and_then(Value::as_f64).is_some());
                let name = e.get("name").and_then(Value::as_str).unwrap();
                assert!(Phase::from_name(name).is_some());
            } else {
                assert_eq!(ph, "M");
            }
        }
    }
}
