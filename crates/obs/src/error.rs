//! Typed errors for JSONL report parsing.
//!
//! Every `from_value` parser in this crate returns a [`ParseError`]
//! instead of a bare `String`, so a corrupt report line fails with the
//! record index, record type, and offending field attached — enough
//! context to find the bad line with `sed -n '42p' report.jsonl`.

use std::fmt;

/// A structured parse failure: what went wrong, and where.
///
/// The location fields are optional because they accrete as the error
/// bubbles up: a field parser knows the field name, the record parser
/// adds the record type, and the report reader adds the record index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Zero-based index of the record in the report, when known.
    pub record: Option<usize>,
    /// The record `type` tag (e.g. `"traffic_summary"`), when known.
    pub record_type: Option<String>,
    /// The field that failed to parse, when the failure is field-local.
    pub field: Option<String>,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// An error with a bare message and no location yet.
    pub fn new(message: impl Into<String>) -> ParseError {
        ParseError {
            record: None,
            record_type: None,
            field: None,
            message: message.into(),
        }
    }

    /// A required field is absent (or the wrong JSON type).
    pub fn missing(field: &str) -> ParseError {
        ParseError {
            field: Some(field.to_string()),
            ..ParseError::new("missing or mistyped field")
        }
    }

    /// A field is present but its value is invalid.
    pub fn bad(field: &str, why: impl Into<String>) -> ParseError {
        ParseError {
            field: Some(field.to_string()),
            ..ParseError::new(why)
        }
    }

    /// The value is not a record of the expected type at all.
    pub fn not_record(expected: &str) -> ParseError {
        ParseError {
            record_type: Some(expected.to_string()),
            ..ParseError::new(format!("value is not a '{expected}' record"))
        }
    }

    /// Attach the record's index in the report.
    pub fn in_record(mut self, index: usize) -> ParseError {
        self.record = Some(index);
        self
    }

    /// Attach the record's `type` tag (keeps an earlier tag if set).
    pub fn for_type(mut self, record_type: &str) -> ParseError {
        if self.record_type.is_none() {
            self.record_type = Some(record_type.to_string());
        }
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(i) = self.record {
            write!(f, "record {i}")?;
            if let Some(t) = &self.record_type {
                write!(f, " ({t})")?;
            }
            write!(f, ": ")?;
        } else if let Some(t) = &self.record_type {
            write!(f, "{t}: ")?;
        }
        if let Some(field) = &self.field {
            write!(f, "field '{field}': ")?;
        }
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<String> for ParseError {
    fn from(message: String) -> ParseError {
        ParseError::new(message)
    }
}

impl From<&str> for ParseError {
    fn from(message: &str) -> ParseError {
        ParseError::new(message)
    }
}

/// Callers that aggregate many error kinds into a `Result<_, String>`
/// (the `drt` CLI, `bench::suite`) keep working via `?`.
impl From<ParseError> for String {
    fn from(e: ParseError) -> String {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_accretes_location() {
        let e = ParseError::missing("rate");
        assert_eq!(e.to_string(), "field 'rate': missing or mistyped field");
        let e = e.for_type("traffic_summary");
        assert_eq!(
            e.to_string(),
            "traffic_summary: field 'rate': missing or mistyped field"
        );
        let e = e.in_record(3);
        assert_eq!(
            e.to_string(),
            "record 3 (traffic_summary): field 'rate': missing or mistyped field"
        );
    }

    #[test]
    fn for_type_keeps_the_innermost_tag() {
        let e = ParseError::not_record("histogram").for_type("outer");
        assert_eq!(e.record_type.as_deref(), Some("histogram"));
    }

    #[test]
    fn string_round_trip() {
        let e = ParseError::bad("ts", "negative timestamp");
        let s: String = e.clone().into();
        assert_eq!(s, e.to_string());
        let back = ParseError::from(s.clone());
        assert_eq!(back.message, s);
    }
}
