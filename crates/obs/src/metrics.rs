//! Zero-dependency wall-clock metrics: monotonic timers, counters, and
//! gauges.
//!
//! The simulator's native currencies — rounds, words, memory — are *model*
//! costs: deterministic at a fixed seed and byte-stable across machines.
//! This module adds the other axis the ROADMAP's "as fast as the hardware
//! allows" goal is priced in: real elapsed time. A [`Stopwatch`] wraps
//! [`std::time::Instant`] (monotonic, immune to wall-clock adjustments); a
//! [`MetricSet`] is an ordered bag of named counters (`u64`) and gauges
//! (`f64`) that serializes as a `metrics` JSONL record with the same
//! `to_value`/`from_value` round-trip contract as [`crate::flight`]'s
//! records, so run reports can carry wall-clock observations next to the
//! simulated spans.
//!
//! Wall-clock numbers are inherently noisy, so everything downstream treats
//! them statistically: [`quantile_ns`] summarizes repeated samples as the
//! p50/p95 the bench suite records, and regression gates keep wall-clock
//! advisory while gating exactly on the simulated columns.

use crate::error::ParseError;
use crate::json::Value;

/// A monotonic wall-clock timer.
///
/// # Examples
///
/// ```
/// let sw = obs::metrics::Stopwatch::start();
/// let ns = sw.elapsed_ns();
/// assert!(sw.elapsed_ns() >= ns);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: std::time::Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: std::time::Instant::now(),
        }
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`] (saturating at
    /// `u64::MAX`, ~584 years).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Elapsed nanoseconds, restarting the timer — successive laps tile the
    /// total elapsed time.
    pub fn lap_ns(&mut self) -> u64 {
        let now = std::time::Instant::now();
        let ns = u64::try_from((now - self.start).as_nanos()).unwrap_or(u64::MAX);
        self.start = now;
        ns
    }
}

/// The `q`-quantile (0.0 ≤ q ≤ 1.0) of a sample of durations, by the
/// nearest-rank method. Returns 0 for an empty sample. The input need not be
/// sorted.
pub fn quantile_ns(samples: &[u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// An ordered set of named counters and gauges, serializable as a `metrics`
/// record.
///
/// Insertion order is preserved so records are diffable; re-recording a name
/// overwrites (gauges) or accumulates (counters) in place.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricSet {
    name: String,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
}

impl MetricSet {
    /// An empty set labeled `name` (the record's `name` field).
    pub fn new(name: &str) -> MetricSet {
        MetricSet {
            name: name.to_string(),
            counters: Vec::new(),
            gauges: Vec::new(),
        }
    }

    /// The set's label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add `by` to counter `key` (creating it at zero first).
    pub fn incr(&mut self, key: &str, by: u64) {
        match self.counters.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v += by,
            None => self.counters.push((key.to_string(), by)),
        }
    }

    /// Set gauge `key` to `value` (overwriting any previous value).
    pub fn set_gauge(&mut self, key: &str, value: f64) {
        match self.gauges.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => self.gauges.push((key.to_string(), value)),
        }
    }

    /// The value of counter `key`, if recorded.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
    }

    /// The value of gauge `key`, if recorded.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// All counters in insertion order.
    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    /// All gauges in insertion order.
    pub fn gauges(&self) -> &[(String, f64)] {
        &self.gauges
    }

    /// Serialize as a `metrics` record, appending the given extra fields.
    pub fn to_value(&self, extra: &[(&str, Value)]) -> Value {
        let mut fields = vec![
            ("type".to_string(), Value::from("metrics")),
            ("name".to_string(), Value::from(self.name.as_str())),
            (
                "counters".to_string(),
                Value::Object(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::from(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_string(),
                Value::Object(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::from(*v)))
                        .collect(),
                ),
            ),
        ];
        for (k, v) in extra {
            fields.push((k.to_string(), v.clone()));
        }
        Value::Object(fields)
    }

    /// Parse a `metrics` record back.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] naming the first missing or ill-typed field.
    pub fn from_value(v: &Value) -> Result<MetricSet, ParseError> {
        if v.get("type").and_then(Value::as_str) != Some("metrics") {
            return Err(ParseError::not_record("metrics"));
        }
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| ParseError::missing("name").for_type("metrics"))?
            .to_string();
        let counters = v
            .get("counters")
            .and_then(Value::as_object)
            .ok_or_else(|| ParseError::missing("counters").for_type("metrics"))?
            .iter()
            .map(|(k, val)| {
                val.as_u64().map(|n| (k.clone(), n)).ok_or_else(|| {
                    ParseError::bad(k, "counter is not a non-negative integer").for_type("metrics")
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let gauges = v
            .get("gauges")
            .and_then(Value::as_object)
            .ok_or_else(|| ParseError::missing("gauges").for_type("metrics"))?
            .iter()
            .map(|(k, val)| {
                val.as_f64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| ParseError::bad(k, "gauge is not a number").for_type("metrics"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MetricSet {
            name,
            counters,
            gauges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotonic() {
        let mut sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
        let lap = sw.lap_ns();
        assert!(lap >= b);
        // After a lap the clock restarts near zero.
        assert!(sw.elapsed_ns() < lap.max(1_000_000_000));
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile_ns(&samples, 0.0), 1);
        assert_eq!(quantile_ns(&samples, 0.5), 51);
        assert_eq!(quantile_ns(&samples, 0.95), 95);
        assert_eq!(quantile_ns(&samples, 1.0), 100);
        assert_eq!(quantile_ns(&[], 0.5), 0);
        assert_eq!(quantile_ns(&[7], 0.95), 7);
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut m = MetricSet::new("case");
        m.incr("hits", 2);
        m.incr("hits", 3);
        m.set_gauge("ratio", 0.5);
        m.set_gauge("ratio", 0.75);
        assert_eq!(m.counter("hits"), Some(5));
        assert_eq!(m.gauge("ratio"), Some(0.75));
        assert_eq!(m.counter("absent"), None);
    }

    #[test]
    fn metrics_record_round_trips() {
        let mut m = MetricSet::new("bench/tree/n256");
        m.incr("wall_ns_p50", 1234);
        m.incr("repeats", 3);
        m.set_gauge("rounds_per_ms", 88.25);
        let v = m.to_value(&[("tier", Value::from("quick"))]);
        assert_eq!(v.get("type").and_then(Value::as_str), Some("metrics"));
        assert_eq!(v.get("tier").and_then(Value::as_str), Some("quick"));
        let text = v.to_string();
        let parsed = MetricSet::from_value(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn from_value_rejects_malformed_records() {
        assert!(MetricSet::from_value(&Value::from("x")).is_err());
        let no_name = Value::object(vec![("type", Value::from("metrics"))]);
        assert!(MetricSet::from_value(&no_name).is_err());
        let bad_counter = Value::object(vec![
            ("type", Value::from("metrics")),
            ("name", Value::from("m")),
            ("counters", Value::object(vec![("c", Value::from(-1i64))])),
            ("gauges", Value::object(Vec::<(&str, Value)>::new())),
        ]);
        assert!(MetricSet::from_value(&bad_counter).is_err());
    }
}
