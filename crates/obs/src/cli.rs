//! Shared command-line conventions for report-capable binaries.
//!
//! Every table/figure binary and the `drt` CLI accept:
//!
//! * `--report <path>` or `--report=<path>` — write a JSONL run report;
//! * the `DRT_REPORT` environment variable as a fallback path;
//! * `--json` (where meaningful) — print the primary output as JSON;
//! * `--threads <t>` or `--threads=<t>` — engine worker threads (`0`, the
//!   default, means all available cores; the `DRT_THREADS` environment
//!   variable is the fallback). Thread count never changes simulated
//!   results — the engine is deterministic — only wall-clock time;
//! * `--profile` — profile the engine round loop (per-worker phase
//!   attribution; the `DRT_PROFILE` environment variable, set non-empty,
//!   is the fallback). Profiling never changes simulated results either.
//!
//! [`ReportOptions::parse`] strips these from an argument list and hands the
//! remaining arguments back, so binaries keep their existing positional
//! parsing untouched.

use std::path::PathBuf;

/// Reporting-related options extracted from the command line.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReportOptions {
    /// Destination for the JSONL run report, when requested.
    pub report: Option<PathBuf>,
    /// Whether `--json` output was requested.
    pub json: bool,
    /// Engine worker threads; `0` (the default) resolves to the machine's
    /// available parallelism.
    pub threads: usize,
    /// Whether `--profile` (or `DRT_PROFILE`) asked for engine round-loop
    /// profiling.
    pub profile: bool,
}

impl ReportOptions {
    /// Extract `--report`/`--json` from `args`; returns the options plus the
    /// arguments that remain. Falls back to the `DRT_REPORT` environment
    /// variable when no `--report` flag is present.
    pub fn parse(args: impl IntoIterator<Item = String>) -> (ReportOptions, Vec<String>) {
        let mut opts = ReportOptions::default();
        let mut rest = Vec::new();
        let mut threads_flag: Option<String> = None;
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            if arg == "--report" {
                opts.report = args.next().map(PathBuf::from);
            } else if let Some(path) = arg.strip_prefix("--report=") {
                opts.report = Some(PathBuf::from(path));
            } else if arg == "--json" {
                opts.json = true;
            } else if arg == "--profile" {
                opts.profile = true;
            } else if arg == "--threads" {
                threads_flag = args.next();
            } else if let Some(t) = arg.strip_prefix("--threads=") {
                threads_flag = Some(t.to_string());
            } else {
                rest.push(arg);
            }
        }
        if opts.report.is_none() {
            if let Ok(path) = std::env::var("DRT_REPORT") {
                if !path.is_empty() {
                    opts.report = Some(PathBuf::from(path));
                }
            }
        }
        if threads_flag.is_none() {
            if let Ok(t) = std::env::var("DRT_THREADS") {
                if !t.is_empty() {
                    threads_flag = Some(t);
                }
            }
        }
        if let Some(t) = threads_flag {
            opts.threads = t.parse().unwrap_or(0);
        }
        if !opts.profile {
            if let Ok(p) = std::env::var("DRT_PROFILE") {
                opts.profile = !p.is_empty();
            }
        }
        (opts, rest)
    }

    /// Extract options from [`std::env::args`], skipping the program name.
    pub fn from_env() -> (ReportOptions, Vec<String>) {
        ReportOptions::parse(std::env::args().skip(1))
    }

    /// Whether a report should be written.
    pub fn reporting(&self) -> bool {
        self.report.is_some()
    }

    /// The effective engine thread count: `--threads 0` (or no flag) means
    /// every available core.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_separate_and_equals_forms() {
        let (opts, rest) = ReportOptions::parse(strings(&[
            "--report",
            "/tmp/r.jsonl",
            "generate",
            "--n",
            "64",
        ]));
        assert_eq!(opts.report.as_deref(), Some("/tmp/r.jsonl".as_ref()));
        assert!(!opts.json);
        assert_eq!(rest, strings(&["generate", "--n", "64"]));

        let (opts, rest) = ReportOptions::parse(strings(&["--report=/tmp/x.jsonl"]));
        assert_eq!(opts.report.as_deref(), Some("/tmp/x.jsonl".as_ref()));
        assert!(rest.is_empty());
    }

    #[test]
    fn parses_json_flag() {
        let (opts, rest) = ReportOptions::parse(strings(&["--json", "foo"]));
        assert!(opts.json);
        assert_eq!(rest, strings(&["foo"]));
    }

    #[test]
    fn parses_threads_flag() {
        // NB: assumes DRT_THREADS is unset in the test environment.
        let (opts, rest) = ReportOptions::parse(strings(&["--threads", "4", "bench"]));
        assert_eq!(opts.threads, 4);
        assert_eq!(opts.resolved_threads(), 4);
        assert_eq!(rest, strings(&["bench"]));

        let (opts, _) = ReportOptions::parse(strings(&["--threads=2"]));
        assert_eq!(opts.threads, 2);

        // Default is auto: resolves to at least one worker.
        let (opts, _) = ReportOptions::parse(strings(&[]));
        assert_eq!(opts.threads, 0);
        assert!(opts.resolved_threads() >= 1);
    }

    #[test]
    fn parses_profile_flag() {
        // NB: assumes DRT_PROFILE is unset in the test environment.
        let (opts, rest) = ReportOptions::parse(strings(&["--profile", "bench"]));
        assert!(opts.profile);
        assert_eq!(rest, strings(&["bench"]));

        let (opts, _) = ReportOptions::parse(strings(&[]));
        assert!(!opts.profile);
    }

    #[test]
    fn no_flags_no_report() {
        // NB: assumes DRT_REPORT is unset in the test environment; other
        // tests must not set it process-wide.
        let (opts, rest) = ReportOptions::parse(strings(&["a", "b"]));
        assert_eq!(opts.report, None);
        assert!(!opts.reporting());
        assert_eq!(rest, strings(&["a", "b"]));
    }
}
