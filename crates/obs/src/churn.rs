//! The `churn_timeline` record: per-round health telemetry for a routing
//! scheme forwarding on a graph that is failing out from under it.
//!
//! Each row samples one churn round: cumulative dead vertices/edges, the
//! blast radius of the accumulated failures (alive vertices whose resident
//! tables reference something dead), a fixed-pair routing probe decomposed
//! with the same outcome taxonomy as the audit probe, and a traffic burst
//! decomposed with the same conservation law as the traffic summary. A
//! `DegradationStat` summarizes the reachability series (knee, half-life)
//! and an optional `SloStat` records the operator-declared floor and where
//! it was first breached.
//!
//! The producing machinery lives in the `churn` crate; this module owns the
//! serialized shape and its `to_value`/`from_value` round-trip contract. As
//! with the other records, the counting identities are *re-checked on
//! parse*: probe outcomes must partition the fixed pair sample, traffic
//! counts must conserve, and — when the process has no revival — the
//! delivered series must be monotonically non-increasing, because a fixed
//! pair sample routed by fixed stale tables can only lose pairs as failures
//! accumulate.

use crate::error::ParseError;
use crate::json::Value;

/// One churn round's health sample.
#[derive(Clone, Debug, PartialEq)]
pub struct HealthRow {
    /// Round index (0 = intact baseline, before any event fires).
    pub round: u64,
    /// Churn events applied in this round.
    pub events: u64,
    /// Cumulative dead vertices after this round.
    pub dead_vertices: u64,
    /// Cumulative unusable edges (own tombstone or dead endpoint).
    pub dead_edges: u64,
    /// Alive vertices whose resident routing state references something dead.
    pub blast_radius: u64,
    /// Fixed-sample pairs delivered by the stale tables this round.
    pub delivered: u64,
    /// Pairs with a dead endpoint (never routed).
    pub endpoint_dead: u64,
    /// Routed pairs that failed: endpoints share no routing tree.
    pub no_common_tree: u64,
    /// Routed pairs that failed: forwarding rule stuck mid-route.
    pub stuck: u64,
    /// Routed pairs that failed: forwarded over a now-missing edge.
    pub bad_forward: u64,
    /// Routed pairs that failed: hop cap exceeded.
    pub looped: u64,
    /// Mean delivered stretch vs the *current* perturbed graph's Dijkstra.
    pub mean_stretch: f64,
    /// `mean_stretch` over the round-0 mean stretch (1.0 when either side
    /// delivered nothing).
    pub stretch_inflation: f64,
    /// Traffic-burst flows offered this round.
    pub offered: u64,
    /// Flows actually injected into the engine.
    pub injected: u64,
    /// Flows refused at injection (no plan, or dead endpoint).
    pub undeliverable: u64,
    /// Injected flows delivered by the burst.
    pub flow_delivered: u64,
    /// Injected flows dropped to finite queues.
    pub dropped_capacity: u64,
    /// Injected flows dropped because forwarding had no usable port.
    pub dropped_stuck: u64,
    /// Injected flows still queued when the burst window closed.
    pub in_flight: u64,
}

impl HealthRow {
    /// Fraction of the baseline-connected pairs still delivered this round.
    pub fn reachability(&self, baseline_connected: u64) -> f64 {
        if baseline_connected == 0 {
            1.0
        } else {
            self.delivered as f64 / baseline_connected as f64
        }
    }

    fn to_value(&self, baseline_connected: u64) -> Value {
        Value::object(vec![
            ("round", Value::from(self.round)),
            ("events", Value::from(self.events)),
            ("dead_vertices", Value::from(self.dead_vertices)),
            ("dead_edges", Value::from(self.dead_edges)),
            ("blast_radius", Value::from(self.blast_radius)),
            ("delivered", Value::from(self.delivered)),
            ("endpoint_dead", Value::from(self.endpoint_dead)),
            ("no_common_tree", Value::from(self.no_common_tree)),
            ("stuck", Value::from(self.stuck)),
            ("bad_forward", Value::from(self.bad_forward)),
            ("looped", Value::from(self.looped)),
            (
                "reachability",
                Value::from(self.reachability(baseline_connected)),
            ),
            ("mean_stretch", Value::from(self.mean_stretch)),
            ("stretch_inflation", Value::from(self.stretch_inflation)),
            ("offered", Value::from(self.offered)),
            ("injected", Value::from(self.injected)),
            ("undeliverable", Value::from(self.undeliverable)),
            ("flow_delivered", Value::from(self.flow_delivered)),
            ("dropped_capacity", Value::from(self.dropped_capacity)),
            ("dropped_stuck", Value::from(self.dropped_stuck)),
            ("in_flight", Value::from(self.in_flight)),
        ])
    }

    fn from_value(v: &Value) -> Result<HealthRow, ParseError> {
        let row = HealthRow {
            round: uint(v, "round")?,
            events: uint(v, "events")?,
            dead_vertices: uint(v, "dead_vertices")?,
            dead_edges: uint(v, "dead_edges")?,
            blast_radius: uint(v, "blast_radius")?,
            delivered: uint(v, "delivered")?,
            endpoint_dead: uint(v, "endpoint_dead")?,
            no_common_tree: uint(v, "no_common_tree")?,
            stuck: uint(v, "stuck")?,
            bad_forward: uint(v, "bad_forward")?,
            looped: uint(v, "looped")?,
            mean_stretch: float(v, "mean_stretch")?,
            stretch_inflation: float(v, "stretch_inflation")?,
            offered: uint(v, "offered")?,
            injected: uint(v, "injected")?,
            undeliverable: uint(v, "undeliverable")?,
            flow_delivered: uint(v, "flow_delivered")?,
            dropped_capacity: uint(v, "dropped_capacity")?,
            dropped_stuck: uint(v, "dropped_stuck")?,
            in_flight: uint(v, "in_flight")?,
        };
        // Traffic conservation, same law as the traffic summary.
        if row.offered != row.injected + row.undeliverable {
            return Err(ParseError::bad(
                "offered",
                format!(
                    "offered {} != injected {} + undeliverable {}",
                    row.offered, row.injected, row.undeliverable
                ),
            ));
        }
        let resolved =
            row.flow_delivered + row.dropped_capacity + row.dropped_stuck + row.in_flight;
        if row.injected != resolved {
            return Err(ParseError::bad(
                "injected",
                format!("injected {} but flow fates sum to {resolved}", row.injected),
            ));
        }
        Ok(row)
    }
}

/// Knee/half-life summary of the reachability series.
#[derive(Clone, Debug, PartialEq)]
pub struct DegradationStat {
    /// Reachability at round 0 (intact graph, stale-table routing losses
    /// only).
    pub initial_reachability: f64,
    /// Reachability at the final round.
    pub final_reachability: f64,
    /// Round of the steepest single-round reachability drop, if any round
    /// dropped at all.
    pub knee_round: Option<u64>,
    /// Size of that steepest drop (absolute reachability lost).
    pub knee_drop: f64,
    /// First round with reachability ≤ half the initial value, if reached.
    pub half_life_round: Option<u64>,
}

impl DegradationStat {
    fn to_value(&self) -> Value {
        Value::object(vec![
            (
                "initial_reachability",
                Value::from(self.initial_reachability),
            ),
            ("final_reachability", Value::from(self.final_reachability)),
            ("knee_round", opt_to_value(self.knee_round)),
            ("knee_drop", Value::from(self.knee_drop)),
            ("half_life_round", opt_to_value(self.half_life_round)),
        ])
    }

    fn from_value(v: &Value) -> Result<DegradationStat, ParseError> {
        Ok(DegradationStat {
            initial_reachability: float(v, "initial_reachability")?,
            final_reachability: float(v, "final_reachability")?,
            knee_round: opt_uint(v, "knee_round")?,
            knee_drop: float(v, "knee_drop")?,
            half_life_round: opt_uint(v, "half_life_round")?,
        })
    }
}

/// An operator-declared SLO ("reachability ≥ floor through round R") and
/// its verdict.
#[derive(Clone, Debug, PartialEq)]
pub struct SloStat {
    /// The reachability floor.
    pub floor: f64,
    /// The last round the floor must hold through.
    pub through_round: u64,
    /// First round ≤ `through_round` that went below the floor, if any.
    pub breach_round: Option<u64>,
}

impl SloStat {
    /// Whether the SLO held.
    pub fn ok(&self) -> bool {
        self.breach_round.is_none()
    }

    fn to_value(&self) -> Value {
        Value::object(vec![
            ("floor", Value::from(self.floor)),
            ("through_round", Value::from(self.through_round)),
            ("breach_round", opt_to_value(self.breach_round)),
            ("ok", Value::from(self.ok())),
        ])
    }

    fn from_value(v: &Value) -> Result<SloStat, ParseError> {
        Ok(SloStat {
            floor: float(v, "floor")?,
            through_round: uint(v, "through_round")?,
            breach_round: opt_uint(v, "breach_round")?,
        })
    }
}

/// One full churn run: configuration echo, per-round health series, and the
/// degradation summary.
#[derive(Clone, Debug, PartialEq)]
pub struct ChurnTimeline {
    /// Vertices in the base graph.
    pub n: u64,
    /// Edges in the base graph.
    pub m: u64,
    /// The scheme's `k`.
    pub k: u64,
    /// Churn process name (`random`, `random-edges`, `targeted`, `regional`).
    pub process: String,
    /// Per-round failure rate (fraction of the original element count).
    pub rate: f64,
    /// Per-round revival probability for dead vertices (0 = monotone decay).
    pub revive: f64,
    /// Master seed.
    pub seed: u64,
    /// Traffic workload name.
    pub workload: String,
    /// Traffic injection rate (flows per engine round during each burst).
    pub traffic_rate: f64,
    /// Size of the fixed probe pair sample.
    pub probe_pairs: u64,
    /// Pairs of the sample connected on the intact graph — the fixed
    /// reachability denominator for every round.
    pub baseline_connected: u64,
    /// Round-0 mean delivered stretch (the inflation denominator).
    pub baseline_mean_stretch: f64,
    /// Per-round samples, ascending by round from 0.
    pub rounds: Vec<HealthRow>,
    /// Reachability-series summary.
    pub degradation: DegradationStat,
    /// SLO verdict, when one was declared.
    pub slo: Option<SloStat>,
}

impl ChurnTimeline {
    /// Whether the declared SLO (if any) held.
    pub fn ok(&self) -> bool {
        self.slo.as_ref().is_none_or(SloStat::ok)
    }

    /// The reachability series, one value per round.
    pub fn reachability_series(&self) -> Vec<f64> {
        self.rounds
            .iter()
            .map(|r| r.reachability(self.baseline_connected))
            .collect()
    }

    /// Serialize as a `churn_timeline` record.
    pub fn to_value(&self) -> Value {
        Value::object(vec![
            ("type", Value::from("churn_timeline")),
            ("n", Value::from(self.n)),
            ("m", Value::from(self.m)),
            ("k", Value::from(self.k)),
            ("process", Value::from(self.process.as_str())),
            ("rate", Value::from(self.rate)),
            ("revive", Value::from(self.revive)),
            ("seed", Value::from(self.seed)),
            ("workload", Value::from(self.workload.as_str())),
            ("traffic_rate", Value::from(self.traffic_rate)),
            ("probe_pairs", Value::from(self.probe_pairs)),
            ("baseline_connected", Value::from(self.baseline_connected)),
            (
                "baseline_mean_stretch",
                Value::from(self.baseline_mean_stretch),
            ),
            (
                "rounds",
                Value::Array(
                    self.rounds
                        .iter()
                        .map(|r| r.to_value(self.baseline_connected))
                        .collect(),
                ),
            ),
            ("degradation", self.degradation.to_value()),
            (
                "slo",
                self.slo.as_ref().map_or(Value::Null, SloStat::to_value),
            ),
        ])
    }

    /// Parse a `churn_timeline` record back.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] naming the first missing or ill-typed field,
    /// a row violating probe partition or traffic conservation, or — for
    /// revival-free processes — a delivered series that is not monotonically
    /// non-increasing.
    pub fn from_value(v: &Value) -> Result<ChurnTimeline, ParseError> {
        if v.get("type").and_then(Value::as_str) != Some("churn_timeline") {
            return Err(ParseError::not_record("churn_timeline"));
        }
        let tag = |e: ParseError| e.for_type("churn_timeline");
        let rounds = v
            .get("rounds")
            .and_then(Value::as_array)
            .ok_or_else(|| tag(ParseError::missing("rounds")))?
            .iter()
            .map(HealthRow::from_value)
            .collect::<Result<Vec<_>, _>>()
            .map_err(tag)?;
        let degradation = DegradationStat::from_value(
            v.get("degradation")
                .ok_or_else(|| tag(ParseError::missing("degradation")))?,
        )
        .map_err(tag)?;
        let slo = match v.get("slo") {
            None | Some(Value::Null) => None,
            Some(s) => Some(SloStat::from_value(s).map_err(tag)?),
        };
        let t = ChurnTimeline {
            n: uint(v, "n").map_err(tag)?,
            m: uint(v, "m").map_err(tag)?,
            k: uint(v, "k").map_err(tag)?,
            process: text(v, "process").map_err(tag)?,
            rate: float(v, "rate").map_err(tag)?,
            revive: float(v, "revive").map_err(tag)?,
            seed: uint(v, "seed").map_err(tag)?,
            workload: text(v, "workload").map_err(tag)?,
            traffic_rate: float(v, "traffic_rate").map_err(tag)?,
            probe_pairs: uint(v, "probe_pairs").map_err(tag)?,
            baseline_connected: uint(v, "baseline_connected").map_err(tag)?,
            baseline_mean_stretch: float(v, "baseline_mean_stretch").map_err(tag)?,
            rounds,
            degradation,
            slo,
        };
        if t.rounds.is_empty() {
            return Err(tag(ParseError::bad("rounds", "empty series")));
        }
        for (i, row) in t.rounds.iter().enumerate() {
            let fail = |field: &str, why: String| tag(ParseError::bad(field, why));
            if row.round != i as u64 {
                return Err(fail(
                    "round",
                    format!("row {i} carries round {}", row.round),
                ));
            }
            // Probe outcomes partition the fixed pair sample.
            let resolved = row.delivered
                + row.endpoint_dead
                + row.no_common_tree
                + row.stuck
                + row.bad_forward
                + row.looped;
            if resolved != t.probe_pairs {
                return Err(fail(
                    "delivered",
                    format!(
                        "round {i} outcomes sum to {resolved} but the sample has {} pairs",
                        t.probe_pairs
                    ),
                ));
            }
            // Delivery can never exceed the intact graph's connectivity.
            if row.delivered > t.baseline_connected {
                return Err(fail(
                    "delivered",
                    format!(
                        "round {i} delivered {} of {} baseline-connected pairs",
                        row.delivered, t.baseline_connected
                    ),
                ));
            }
        }
        if t.baseline_connected > t.probe_pairs {
            return Err(tag(ParseError::bad(
                "baseline_connected",
                "exceeds sampled pairs",
            )));
        }
        // Without revival the failure set only grows, the pair sample and
        // tables are fixed, so the delivered series must be monotone.
        if t.revive == 0.0 {
            for w in t.rounds.windows(2) {
                if w[1].delivered > w[0].delivered {
                    return Err(tag(ParseError::bad(
                        "delivered",
                        format!(
                            "round {} delivers {} > {} of round {} with no revival",
                            w[1].round, w[1].delivered, w[0].delivered, w[0].round
                        ),
                    )));
                }
            }
        }
        Ok(t)
    }
}

fn opt_to_value(v: Option<u64>) -> Value {
    v.map_or(Value::Null, Value::from)
}

fn opt_uint(v: &Value, key: &str) -> Result<Option<u64>, ParseError> {
    match v.get(key) {
        None => Err(ParseError::missing(key)),
        Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| ParseError::bad(key, "not a non-negative integer")),
    }
}

fn uint(v: &Value, key: &str) -> Result<u64, ParseError> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| ParseError::missing(key))
}

fn float(v: &Value, key: &str) -> Result<f64, ParseError> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| ParseError::missing(key))
}

fn text(v: &Value, key: &str) -> Result<String, ParseError> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| ParseError::missing(key))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(round: u64, delivered: u64) -> HealthRow {
        HealthRow {
            round,
            events: if round == 0 { 0 } else { 2 },
            dead_vertices: 2 * round,
            dead_edges: 5 * round,
            blast_radius: 8 * round,
            delivered,
            endpoint_dead: 90 - delivered.min(90),
            no_common_tree: 4,
            stuck: 3,
            bad_forward: 2,
            looped: 1,
            mean_stretch: 1.2,
            stretch_inflation: 1.0,
            offered: 64,
            injected: 60,
            undeliverable: 4,
            flow_delivered: 50,
            dropped_capacity: 4,
            dropped_stuck: 5,
            in_flight: 1,
        }
    }

    fn sample() -> ChurnTimeline {
        ChurnTimeline {
            n: 128,
            m: 400,
            k: 2,
            process: "targeted".to_string(),
            rate: 0.02,
            revive: 0.0,
            seed: 7,
            workload: "uniform".to_string(),
            traffic_rate: 2.0,
            probe_pairs: 100,
            baseline_connected: 95,
            baseline_mean_stretch: 1.2,
            rounds: vec![row(0, 90), row(1, 80), row(2, 40)],
            degradation: DegradationStat {
                initial_reachability: 90.0 / 95.0,
                final_reachability: 40.0 / 95.0,
                knee_round: Some(2),
                knee_drop: 40.0 / 95.0,
                half_life_round: Some(2),
            },
            slo: Some(SloStat {
                floor: 0.9,
                through_round: 2,
                breach_round: Some(1),
            }),
        }
    }

    #[test]
    fn round_trips() {
        let t = sample();
        let parsed =
            ChurnTimeline::from_value(&crate::json::parse(&t.to_value().to_string()).unwrap())
                .unwrap();
        assert_eq!(parsed, t);
        assert!(!parsed.ok(), "breached SLO");
        let series = parsed.reachability_series();
        assert_eq!(series.len(), 3);
        assert!((series[0] - 90.0 / 95.0).abs() < 1e-12);
    }

    #[test]
    fn none_slo_round_trips_as_null_and_is_ok() {
        let mut t = sample();
        t.slo = None;
        let parsed =
            ChurnTimeline::from_value(&crate::json::parse(&t.to_value().to_string()).unwrap())
                .unwrap();
        assert_eq!(parsed.slo, None);
        assert!(parsed.ok());
    }

    #[test]
    fn rejects_wrong_type_and_missing_fields() {
        let not = Value::object(vec![("type", Value::from("metrics"))]);
        assert!(ChurnTimeline::from_value(&not).is_err());
        let mut fields = match sample().to_value() {
            Value::Object(fields) => fields,
            _ => unreachable!(),
        };
        fields.retain(|(k, _)| k != "baseline_connected");
        let err = ChurnTimeline::from_value(&Value::Object(fields)).unwrap_err();
        assert_eq!(err.field.as_deref(), Some("baseline_connected"));
        assert_eq!(err.record_type.as_deref(), Some("churn_timeline"));
    }

    #[test]
    fn rejects_non_monotone_delivery_without_revival() {
        let mut t = sample();
        t.rounds[2].delivered = 85; // recovers without revival: impossible
        t.rounds[2].endpoint_dead = 5;
        let err =
            ChurnTimeline::from_value(&crate::json::parse(&t.to_value().to_string()).unwrap())
                .unwrap_err();
        assert_eq!(err.field.as_deref(), Some("delivered"));

        // The same series is legal when the process revives vertices.
        t.revive = 0.1;
        assert!(
            ChurnTimeline::from_value(&crate::json::parse(&t.to_value().to_string()).unwrap())
                .is_ok()
        );
    }

    #[test]
    fn rejects_unbalanced_probe_partition() {
        let mut t = sample();
        t.rounds[1].stuck += 1; // outcomes no longer partition the sample
        let err =
            ChurnTimeline::from_value(&crate::json::parse(&t.to_value().to_string()).unwrap())
                .unwrap_err();
        assert_eq!(err.field.as_deref(), Some("delivered"));
    }

    #[test]
    fn rejects_broken_traffic_conservation() {
        let mut t = sample();
        t.rounds[0].injected = 59; // offered != injected + undeliverable
        let err =
            ChurnTimeline::from_value(&crate::json::parse(&t.to_value().to_string()).unwrap())
                .unwrap_err();
        assert_eq!(err.field.as_deref(), Some("offered"));
    }
}
