//! The path-recovery mechanism (paper §2).
//!
//! Hopset edges are shortcuts; routing needs real trees in `G`. When a
//! hopset edge `e = (x, y)` carries a root-distance `d̂(x, z)` into a
//! cluster tree, every vertex `v` on the realizing path `P(e)` must learn its
//! own approximate distance `d̂(v, z) ≤ d_P(v, x) + d̂(x, z)` and a parent
//! (its predecessor on `P(e)`) implementing it. The protocol runs in
//! `Õ(|H|·C + D)·β` rounds, where `C` bounds how many roots any vertex
//! serves; memory per path vertex grows by O(1) words per root.

use congest::{CostLedger, MemoryMeter};
use graphs::{dist_add, VertexId, Weight, INFINITY};

use crate::hopset::Hopset;

/// Per-vertex recovered state for one root: best distance plus the parent
/// (predecessor toward the root) realizing it.
#[derive(Clone, Debug)]
pub struct Recovered {
    /// Best known distance to the root, per host vertex.
    pub dist: Vec<Weight>,
    /// Predecessor implementing `dist` (a neighbor on some `P(e)` or an
    /// exploration parent), `None` at the root / unreached vertices.
    pub parent: Vec<Option<VertexId>>,
}

impl Recovered {
    /// Fresh state over `n` host vertices.
    pub fn new(n: usize) -> Self {
        Recovered {
            dist: vec![INFINITY; n],
            parent: vec![None; n],
        }
    }

    /// Seed the root itself.
    pub fn seed(&mut self, root: VertexId, d0: Weight) {
        if d0 < self.dist[root.index()] {
            self.dist[root.index()] = d0;
            self.parent[root.index()] = None;
        }
    }

    /// Fold in a candidate `(dist, parent)` for `v`; returns whether it won.
    pub fn offer(&mut self, v: VertexId, d: Weight, parent: Option<VertexId>) -> bool {
        if d < self.dist[v.index()] {
            self.dist[v.index()] = d;
            self.parent[v.index()] = parent;
            true
        } else {
            false
        }
    }
}

/// Push a root distance along the path realizing one hopset record.
///
/// `owner`/`index` select the record; `reversed = false` walks the stored
/// direction (tail = owner), `true` walks backwards (tail = the `to`
/// endpoint). `tail_dist` is the tail's approximate distance to the root.
/// Every path vertex is offered `tail_dist + d_P(tail, v)` with its
/// predecessor as parent. Rounds are charged as one sweep of the path;
/// memory is touched O(1) per improved vertex.
///
/// Returns how many vertices improved.
#[allow(clippy::too_many_arguments)]
pub fn recover_edge(
    hopset: &Hopset,
    owner: VertexId,
    index: usize,
    reversed: bool,
    tail_dist: Weight,
    g: &graphs::Graph,
    out: &mut Recovered,
    ledger: &mut CostLedger,
    memory: &mut MemoryMeter,
) -> usize {
    let stored = hopset.path(owner, index);
    let path: Vec<VertexId> = if reversed {
        stored.iter().rev().copied().collect()
    } else {
        stored.to_vec()
    };
    let mut improved = 0;
    let mut acc = tail_dist;
    for w in path.windows(2) {
        let (prev, cur) = (w[0], w[1]);
        let edge = g
            .edge_weight(prev, cur)
            .expect("hopset path edge exists in G");
        acc = dist_add(acc, edge);
        memory.touch(cur, 2);
        if out.offer(cur, acc, Some(prev)) {
            improved += 1;
        }
    }
    ledger.charge_rounds(path.len().saturating_sub(1) as u64);
    improved
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::{generators, GraphBuilder};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn line_hopset() -> (graphs::Graph, Hopset) {
        // Path 0-1-2-3 with weights 2, 3, 4; hopset edge 0 → 3 (weight 9).
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1), 2);
        b.add_edge(VertexId(1), VertexId(2), 3);
        b.add_edge(VertexId(2), VertexId(3), 4);
        let g = b.build();
        let mut h = Hopset::new(4);
        h.add_edge(
            VertexId(0),
            VertexId(3),
            9,
            vec![VertexId(0), VertexId(1), VertexId(2), VertexId(3)],
        );
        (g, h)
    }

    #[test]
    fn forward_walk_accumulates_distances() {
        let (g, h) = line_hopset();
        let mut out = Recovered::new(4);
        out.seed(VertexId(0), 0);
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(4);
        let improved = recover_edge(
            &h,
            VertexId(0),
            0,
            false,
            0,
            &g,
            &mut out,
            &mut led,
            &mut mem,
        );
        assert_eq!(improved, 3);
        assert_eq!(out.dist, vec![0, 2, 5, 9]);
        assert_eq!(out.parent[3], Some(VertexId(2)));
        assert_eq!(out.parent[1], Some(VertexId(0)));
        assert_eq!(led.rounds(), 3);
    }

    #[test]
    fn reversed_walk_runs_from_the_other_end() {
        let (g, h) = line_hopset();
        let mut out = Recovered::new(4);
        out.seed(VertexId(3), 10);
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(4);
        recover_edge(
            &h,
            VertexId(0),
            0,
            true,
            10,
            &g,
            &mut out,
            &mut led,
            &mut mem,
        );
        assert_eq!(out.dist, vec![19, 17, 14, 10]);
        assert_eq!(out.parent[0], Some(VertexId(1)));
    }

    #[test]
    fn offers_lose_to_better_existing_distances() {
        let (g, h) = line_hopset();
        let mut out = Recovered::new(4);
        out.seed(VertexId(0), 0);
        out.offer(VertexId(2), 1, Some(VertexId(3))); // artificially good
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(4);
        let improved = recover_edge(
            &h,
            VertexId(0),
            0,
            false,
            0,
            &g,
            &mut out,
            &mut led,
            &mut mem,
        );
        assert_eq!(improved, 2); // vertex 2 kept its better value
        assert_eq!(out.dist[2], 1);
        assert_eq!(out.parent[2], Some(VertexId(3)));
    }

    #[test]
    fn recovered_parents_chain_to_a_seed() {
        let mut rng = ChaCha8Rng::seed_from_u64(81);
        let g = generators::erdos_renyi_connected(60, 0.08, 1..=9, &mut rng);
        // Hopset edge along a real shortest path from 0.
        let (dist, parents) = graphs::shortest_paths::dijkstra_with_parents(&g, VertexId(0));
        // Find the farthest vertex and its path.
        let far = g
            .vertices()
            .max_by_key(|v| dist[v.index()])
            .expect("non-empty");
        let mut path = vec![far];
        let mut cur = far;
        while let Some(p) = parents[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        let mut h = Hopset::new(60);
        h.add_edge(VertexId(0), far, dist[far.index()], path);
        let mut out = Recovered::new(60);
        out.seed(VertexId(0), 0);
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(60);
        recover_edge(
            &h,
            VertexId(0),
            0,
            false,
            0,
            &g,
            &mut out,
            &mut led,
            &mut mem,
        );
        // Walk back from far: parents chain to the seed with consistent dist.
        let mut cur = far;
        while let Some(p) = out.parent[cur.index()] {
            let w = g.edge_weight(p, cur).unwrap();
            assert_eq!(out.dist[cur.index()], out.dist[p.index()] + w);
            cur = p;
        }
        assert_eq!(cur, VertexId(0));
    }
}
