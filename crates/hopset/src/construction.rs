//! Hopset construction: the Thorup–Zwick-bunch scheme of \[EN17b\] on the
//! virtual vertex set.
//!
//! A sampled hierarchy `A_0 ⊇ A_1 ⊇ … ⊇ A_ℓ` over `V'` (uniform demotion
//! probability `|V'|^{-1/(ℓ+1)}`) yields, for every `u ∈ A_i \ A_{i+1}`:
//!
//! * **bunch edges** `u → v` for all `v ∈ A_i` with `d(u, v) < d(u, A_{i+1})`
//!   — whp `Õ(|V'|^{1/(ℓ+1)})` of them, which is what bounds the out-degree
//!   and hence the arboricity;
//! * a **pivot edge** `u → p_{i+1}(u)` to the nearest vertex of `A_{i+1}`;
//! * the top level `A_ℓ` is intraconnected (a clique on whp few vertices).
//!
//! Edge weights are exact `G`-distances between virtual vertices; by the
//! paper's Claim 7 these equal the virtual-graph distances whp (a vertex of
//! `V'` appears on every `B` consecutive shortest-path vertices), and the
//! realizing `G`-paths are retained for the path-recovery mechanism.
//!
//! Rounds are charged per the distributed schedule: each level costs one
//! `B`-bounded exploration plus a Lemma-1 broadcast of the level's sets and
//! new edges (see `DESIGN.md` on accounting).

use congest::{CostLedger, MemoryMeter};
use graphs::{shortest_paths, Graph, VertexId, INFINITY};
use rand::Rng;

use crate::hopset::Hopset;
use crate::virtual_graph::VirtualGraph;

/// Construction parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HopsetParams {
    /// Number of hierarchy levels `ℓ` (the hierarchy has `ℓ + 1` sets).
    /// Larger `ℓ` → sparser hopset and smaller arboricity, larger hop bound.
    pub levels: usize,
}

impl Default for HopsetParams {
    fn default() -> Self {
        HopsetParams { levels: 2 }
    }
}

impl HopsetParams {
    /// Derive levels from the paper's knobs: size exponent `κ` and memory
    /// exponent `ρ` (arboricity `Õ(m^ρ)` wants `ℓ + 1 ≈ 1/ρ`; size
    /// `O(m^{1+1/κ})` wants `ℓ + 1 ≈ κ`). Takes the stricter (larger).
    ///
    /// # Panics
    ///
    /// Panics if `kappa < 2` or `rho` is not in `(0, 1]`.
    pub fn for_kappa_rho(kappa: usize, rho: f64) -> Self {
        assert!(kappa >= 2, "kappa must be at least 2");
        assert!(rho > 0.0 && rho <= 1.0, "rho must be in (0, 1]");
        let by_rho = (1.0 / rho).ceil() as usize;
        HopsetParams {
            levels: kappa.max(by_rho).saturating_sub(1).max(1),
        }
    }
}

/// Everything the construction measured about itself.
#[derive(Clone, Debug)]
pub struct BuildStats {
    /// Sizes of the hierarchy sets `|A_0|, …, |A_ℓ|`.
    pub level_sizes: Vec<usize>,
    /// Directed hopset records created.
    pub edges: usize,
    /// Max out-degree = the arboricity bound `α`.
    pub arboricity: usize,
}

/// Output of [`build`].
#[derive(Clone, Debug)]
pub struct HopsetOutput {
    /// The hopset (out-edge oriented, with realizing paths).
    pub hopset: Hopset,
    /// Self-measurements.
    pub stats: BuildStats,
}

/// Build a hopset for the virtual graph `virt` over host graph `g`.
///
/// `d` is the broadcast-tree depth used to price Lemma-1 phases. Rounds go to
/// `ledger`, per-vertex memory to `memory`.
///
/// # Panics
///
/// Panics if `virt` has no virtual vertices.
pub fn build<R: Rng>(
    g: &Graph,
    virt: &VirtualGraph,
    params: HopsetParams,
    d: u64,
    ledger: &mut CostLedger,
    memory: &mut MemoryMeter,
    rng: &mut R,
) -> HopsetOutput {
    build_observed(
        g,
        virt,
        params,
        d,
        ledger,
        memory,
        rng,
        &mut obs::Recorder::disabled(),
    )
}

/// [`build`], with phase attribution: each level opens
/// `hopset/L{i}/superclustering` (pivot exploration + hierarchy broadcast)
/// and `hopset/L{i}/interconnection` (bunch + pivot edges) spans on `rec`,
/// and the top-level clique opens `hopset/intraconnect`. Every ledger charge
/// inside those regions is mirrored into the recorder, so span deltas match
/// the ledger exactly.
///
/// # Panics
///
/// Panics if `virt` has no virtual vertices.
#[allow(clippy::too_many_arguments)]
pub fn build_observed<R: Rng>(
    g: &Graph,
    virt: &VirtualGraph,
    params: HopsetParams,
    d: u64,
    ledger: &mut CostLedger,
    memory: &mut MemoryMeter,
    rng: &mut R,
    rec: &mut obs::Recorder,
) -> HopsetOutput {
    let verts = virt.virtual_vertices();
    assert!(!verts.is_empty(), "virtual graph has no vertices");
    let m = verts.len();
    let levels = params.levels.max(1);
    let p = (m as f64).powf(-1.0 / (levels as f64 + 1.0));

    // Hierarchy: A_0 = V'; demote with probability p at each step.
    let mut hierarchy: Vec<Vec<VertexId>> = vec![verts.to_vec()];
    for _ in 0..levels {
        let prev = hierarchy.last().expect("non-empty");
        let next: Vec<VertexId> = prev
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(p.clamp(0.0, 1.0)))
            .collect();
        hierarchy.push(next);
    }
    // The top level anchors everything; if sampling emptied it, promote the
    // last non-empty set (keeps the construction total on small inputs).
    if hierarchy.last().expect("non-empty").is_empty() {
        let last_nonempty = hierarchy
            .iter()
            .rposition(|a| !a.is_empty())
            .expect("A_0 is non-empty");
        hierarchy.truncate(last_nonempty + 1);
    }
    let levels = hierarchy.len() - 1;

    let mut hopset = Hopset::new(g.num_vertices());

    // Per-level membership flags for bunch tests.
    let mut member: Vec<Vec<bool>> = Vec::with_capacity(levels + 1);
    for a in &hierarchy {
        let mut f = vec![false; g.num_vertices()];
        for &v in a {
            f[v.index()] = true;
        }
        member.push(f);
    }

    let path_from = |parents: &[Option<VertexId>], src: VertexId, dst: VertexId| {
        let mut path = vec![dst];
        let mut cur = dst;
        while cur != src {
            cur = parents[cur.index()].expect("reachable");
            path.push(cur);
        }
        path.reverse();
        path
    };

    for i in 0..levels {
        // Pivot distances d(·, A_{i+1}) via a multi-source exploration.
        let super_span = rec.begin(&format!("hopset/L{i}/superclustering"));
        let (piv_dist, piv_owner) = shortest_paths::multi_source_dijkstra(g, &hierarchy[i + 1]);
        ledger.charge_rounds_span(virt.b_hops() as u64, rec);
        ledger.charge_broadcast_span(hierarchy[i].len() as u64, d, rec);
        rec.end_with_memory(super_span, memory.peaks());

        let inter_span = rec.begin(&format!("hopset/L{i}/interconnection"));
        let mut level_edges = 0u64;
        for &u in &hierarchy[i] {
            if member[i + 1][u.index()] {
                continue; // u survives to the next level
            }
            let (dist_u, parents_u) = shortest_paths::dijkstra_with_parents(g, u);
            let du_next = piv_dist[u.index()];
            // Bunch edges: strictly closer members of A_i than A_{i+1}.
            for &v in &hierarchy[i] {
                if v != u && dist_u[v.index()] < du_next {
                    let path = path_from(&parents_u, u, v);
                    hopset.add_edge(u, v, dist_u[v.index()], path);
                    level_edges += 1;
                }
            }
            // Pivot edge.
            if du_next != INFINITY {
                let pivot = piv_owner[u.index()].expect("finite pivot distance");
                debug_assert_eq!(dist_u[pivot.index()], du_next);
                let path = path_from(&parents_u, u, pivot);
                hopset.add_edge(u, pivot, du_next, path);
                level_edges += 1;
            }
            memory.set(u, hopset.memory_words(u) + 2 * (levels + 1));
        }
        ledger.charge_broadcast_span(level_edges, d, rec);
        rec.end_with_memory(inter_span, memory.peaks());
    }

    // Top level: intraconnect (oriented small-id → large-id).
    let intra_span = rec.begin("hopset/intraconnect");
    let top = &hierarchy[levels];
    let mut top_edges = 0u64;
    for (j, &u) in top.iter().enumerate() {
        if top.len() > 1 {
            let (dist_u, parents_u) = shortest_paths::dijkstra_with_parents(g, u);
            for &v in &top[j + 1..] {
                if dist_u[v.index()] != INFINITY {
                    let path = path_from(&parents_u, u, v);
                    hopset.add_edge(u, v, dist_u[v.index()], path);
                    top_edges += 1;
                }
            }
        }
        memory.set(u, hopset.memory_words(u) + 2 * (levels + 1));
    }
    ledger.charge_rounds_span(virt.b_hops() as u64, rec);
    ledger.charge_broadcast_span(top_edges, d, rec);
    rec.end_with_memory(intra_span, memory.peaks());

    let stats = BuildStats {
        level_sizes: hierarchy.iter().map(Vec::len).collect(),
        edges: hopset.num_edges(),
        arboricity: hopset.max_out_degree(),
    };
    HopsetOutput { hopset, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(n: usize, p_virt: f64, seed: u64) -> (Graph, VirtualGraph, ChaCha8Rng) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 3.0 / n as f64, 1..=20, &mut rng);
        let virt = VirtualGraph::sample(&g, p_virt, &mut rng);
        (g, virt, rng)
    }

    fn build_default(
        g: &Graph,
        virt: &VirtualGraph,
        rng: &mut ChaCha8Rng,
    ) -> (HopsetOutput, CostLedger, MemoryMeter) {
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(g.num_vertices());
        let out = build(g, virt, HopsetParams::default(), 8, &mut led, &mut mem, rng);
        (out, led, mem)
    }

    #[test]
    fn params_from_kappa_rho() {
        assert_eq!(HopsetParams::for_kappa_rho(4, 0.5).levels, 3);
        assert_eq!(HopsetParams::for_kappa_rho(2, 0.25).levels, 3);
        assert_eq!(HopsetParams::for_kappa_rho(2, 1.0).levels, 1);
    }

    #[test]
    fn hierarchy_is_nested_and_shrinking() {
        let (g, virt, mut rng) = setup(300, 0.3, 61);
        let (out, _, _) = build_default(&g, &virt, &mut rng);
        let sizes = &out.stats.level_sizes;
        assert_eq!(sizes[0], virt.virtual_vertices().len());
        for w in sizes.windows(2) {
            assert!(w[1] <= w[0], "levels must shrink: {sizes:?}");
        }
        assert!(*sizes.last().unwrap() >= 1);
    }

    #[test]
    fn edges_start_and_end_at_virtual_vertices() {
        let (g, virt, mut rng) = setup(200, 0.25, 62);
        let (out, _, _) = build_default(&g, &virt, &mut rng);
        for (u, v, w) in out.hopset.edges() {
            assert!(virt.is_virtual(u), "{u} not virtual");
            assert!(virt.is_virtual(v), "{v} not virtual");
            assert!(w > 0 || u == v);
        }
    }

    #[test]
    fn edge_weights_are_exact_distances_with_valid_paths() {
        let (g, virt, mut rng) = setup(120, 0.3, 63);
        let (out, _, _) = build_default(&g, &virt, &mut rng);
        for u in g.vertices() {
            let dist_u = if out.hopset.out_edges(u).is_empty() {
                continue;
            } else {
                shortest_paths::dijkstra(&g, u)
            };
            for (j, e) in out.hopset.out_edges(u).iter().enumerate() {
                assert_eq!(e.weight, dist_u[e.to.index()], "weight is d_G");
                // The stored path realizes the weight edge by edge.
                let path = out.hopset.path(u, j);
                let mut total = 0;
                for pair in path.windows(2) {
                    total += g.edge_weight(pair[0], pair[1]).expect("path edge in G");
                }
                assert_eq!(total, e.weight);
            }
        }
    }

    #[test]
    fn arboricity_is_far_below_virtual_count() {
        let (g, virt, mut rng) = setup(600, 0.4, 64);
        let (out, _, _) = build_default(&g, &virt, &mut rng);
        let m = virt.virtual_vertices().len();
        assert!(
            out.stats.arboricity < m / 2,
            "arboricity {} should be far below |V'| = {m}",
            out.stats.arboricity
        );
    }

    #[test]
    fn more_levels_means_sparser() {
        let (g, virt, mut rng) = setup(500, 0.4, 65);
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(g.num_vertices());
        let dense = build(
            &g,
            &virt,
            HopsetParams { levels: 1 },
            8,
            &mut led,
            &mut mem,
            &mut rng,
        );
        let sparse = build(
            &g,
            &virt,
            HopsetParams { levels: 4 },
            8,
            &mut led,
            &mut mem,
            &mut rng,
        );
        assert!(
            sparse.hopset.num_edges() < dense.hopset.num_edges(),
            "levels=4 ({}) should be sparser than levels=1 ({})",
            sparse.hopset.num_edges(),
            dense.hopset.num_edges()
        );
    }

    #[test]
    fn memory_metered_matches_out_edges() {
        let (g, virt, mut rng) = setup(150, 0.3, 66);
        let (out, _, mem) = build_default(&g, &virt, &mut rng);
        for &u in virt.virtual_vertices() {
            assert!(mem.peak(u) >= out.hopset.memory_words(u));
        }
    }

    #[test]
    fn ledger_accounts_rounds_and_broadcasts() {
        let (g, virt, mut rng) = setup(150, 0.3, 67);
        let (_, led, _) = build_default(&g, &virt, &mut rng);
        assert!(led.rounds() > 0);
        assert!(led.broadcasts() > 0);
    }

    #[test]
    fn observed_build_attributes_every_charge_to_spans() {
        let (g, virt, mut rng) = setup(150, 0.3, 69);
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(g.num_vertices());
        let mut rec = obs::Recorder::new();
        let out = build_observed(
            &g,
            &virt,
            HopsetParams::default(),
            8,
            &mut led,
            &mut mem,
            &mut rng,
            &mut rec,
        );
        // Every ledger charge happened inside a span; totals must agree.
        assert_eq!(rec.totals(), led.counters());
        // Spans: superclustering + interconnection per level, + intraconnect.
        let levels = out.stats.level_sizes.len() - 1;
        assert_eq!(rec.spans().len(), 2 * levels + 1);
        assert!(rec.spans().iter().any(|s| s.name == "hopset/intraconnect"));
        assert!(rec
            .spans()
            .iter()
            .any(|s| s.name == "hopset/L0/superclustering"));
        // Top-level spans partition the totals.
        let sum: u64 = rec
            .spans()
            .iter()
            .filter(|s| s.depth == 0)
            .map(|s| s.delta.rounds)
            .sum();
        assert_eq!(sum, led.rounds());
        // Memory snapshots are monotone toward the final max peak.
        assert_eq!(
            rec.spans().last().unwrap().peak_memory_words,
            mem.max_peak()
        );
    }

    #[test]
    fn single_virtual_vertex_yields_empty_hopset() {
        let mut rng = ChaCha8Rng::seed_from_u64(68);
        let g = generators::path(10, 1..=1, &mut rng);
        let virt = VirtualGraph::from_set(&g, vec![VertexId(3)], 10);
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(10);
        let out = build(
            &g,
            &virt,
            HopsetParams::default(),
            3,
            &mut led,
            &mut mem,
            &mut rng,
        );
        assert_eq!(out.hopset.num_edges(), 0);
    }
}
