//! The hopset data structure: out-edge oriented, arboricity-bounded.
//!
//! Each virtual vertex stores only its *outgoing* hopset edges. The paper's
//! low-memory results hinge on this orientation having small out-degree
//! (which bounds the arboricity): a vertex never stores the `Ω(√n)` edges
//! that might point *at* it — Bellman–Ford over incoming edges works because
//! senders broadcast their out-edges along with their estimates (Lemma 2).

use graphs::{VertexId, Weight};

/// One directed hopset record held by its source vertex.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HopsetEdge {
    /// The other endpoint.
    pub to: VertexId,
    /// The edge weight = length of the `G`-path realizing it.
    pub weight: Weight,
}

/// A hopset over a host universe, stored as per-vertex out-edge lists plus,
/// for path recovery, the `G`-path realizing each edge.
#[derive(Clone, Debug, Default)]
pub struct Hopset {
    out: Vec<Vec<HopsetEdge>>,
    /// `paths[v][j]` = host path realizing `out[v][j]`, from `v` to `to`
    /// inclusive. Held by the *simulation* for the path-recovery protocol;
    /// no vertex stores whole paths (each path vertex knows only its own
    /// predecessor, which is what recovery distributes).
    paths: Vec<Vec<Vec<VertexId>>>,
}

impl Hopset {
    /// An empty hopset over `n` host vertices.
    pub fn new(n: usize) -> Self {
        Hopset {
            out: vec![Vec::new(); n],
            paths: vec![Vec::new(); n],
        }
    }

    /// Host universe size.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Add a directed record `from → to` with the realizing path.
    ///
    /// # Panics
    ///
    /// Panics if the path does not start at `from` and end at `to`.
    pub fn add_edge(&mut self, from: VertexId, to: VertexId, weight: Weight, path: Vec<VertexId>) {
        assert_eq!(path.first(), Some(&from), "path must start at source");
        assert_eq!(path.last(), Some(&to), "path must end at target");
        self.out[from.index()].push(HopsetEdge { to, weight });
        self.paths[from.index()].push(path);
    }

    /// The out-edges stored at `v`.
    pub fn out_edges(&self, v: VertexId) -> &[HopsetEdge] {
        &self.out[v.index()]
    }

    /// The `G`-path realizing the `j`-th out-edge of `v`.
    pub fn path(&self, v: VertexId, j: usize) -> &[VertexId] {
        &self.paths[v.index()][j]
    }

    /// Total number of directed records.
    pub fn num_edges(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }

    /// Maximum out-degree — the arboricity bound `α`: the out-edge lists are
    /// an orientation with out-degree ≤ α, so the edges decompose into α
    /// pseudoforests (see [`Hopset::forest_decomposition`]).
    pub fn max_out_degree(&self) -> usize {
        self.out.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Decompose the edge set into `max_out_degree()` pseudoforests: forest
    /// `f` contains the `f`-th out-edge of every vertex, so each vertex has
    /// at most one parent per forest — the "parents in the trees of the
    /// arboricity decomposition" the paper has vertices store.
    pub fn forest_decomposition(&self) -> Vec<Vec<(VertexId, VertexId, Weight)>> {
        let alpha = self.max_out_degree();
        let mut forests = vec![Vec::new(); alpha];
        for v in 0..self.out.len() {
            for (j, e) in self.out[v].iter().enumerate() {
                forests[j].push((VertexId(v as u32), e.to, e.weight));
            }
        }
        forests
    }

    /// Iterate over all directed records as `(from, to, weight)`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        self.out.iter().enumerate().flat_map(|(v, list)| {
            list.iter()
                .map(move |e| (VertexId(v as u32), e.to, e.weight))
        })
    }

    /// Words of memory vertex `v` devotes to its hopset edges (2 per record).
    pub fn memory_words(&self, v: VertexId) -> usize {
        2 * self.out[v.index()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Hopset {
        let mut h = Hopset::new(5);
        h.add_edge(
            VertexId(0),
            VertexId(2),
            7,
            vec![VertexId(0), VertexId(1), VertexId(2)],
        );
        h.add_edge(VertexId(0), VertexId(3), 4, vec![VertexId(0), VertexId(3)]);
        h.add_edge(VertexId(2), VertexId(4), 2, vec![VertexId(2), VertexId(4)]);
        h
    }

    #[test]
    fn counts_and_degrees() {
        let h = sample();
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.max_out_degree(), 2);
        assert_eq!(h.out_edges(VertexId(0)).len(), 2);
        assert_eq!(h.out_edges(VertexId(1)).len(), 0);
        assert_eq!(h.memory_words(VertexId(0)), 4);
    }

    #[test]
    fn paths_align_with_edges() {
        let h = sample();
        assert_eq!(
            h.path(VertexId(0), 0),
            &[VertexId(0), VertexId(1), VertexId(2)]
        );
        assert_eq!(h.path(VertexId(0), 1), &[VertexId(0), VertexId(3)]);
    }

    #[test]
    fn forest_decomposition_has_unit_out_degree() {
        let h = sample();
        let forests = h.forest_decomposition();
        assert_eq!(forests.len(), 2);
        for forest in &forests {
            let mut sources: Vec<VertexId> = forest.iter().map(|&(s, _, _)| s).collect();
            sources.sort();
            let before = sources.len();
            sources.dedup();
            assert_eq!(
                before,
                sources.len(),
                "a vertex has two edges in one forest"
            );
        }
        let total: usize = forests.iter().map(Vec::len).sum();
        assert_eq!(total, h.num_edges());
    }

    #[test]
    #[should_panic(expected = "path must start at source")]
    fn rejects_misaligned_path() {
        let mut h = Hopset::new(3);
        h.add_edge(VertexId(0), VertexId(2), 1, vec![VertexId(1), VertexId(2)]);
    }

    #[test]
    fn edges_iterator_matches_storage() {
        let h = sample();
        let all: Vec<_> = h.edges().collect();
        assert_eq!(all.len(), 3);
        assert!(all.contains(&(VertexId(0), VertexId(2), 7)));
        assert!(all.contains(&(VertexId(2), VertexId(4), 2)));
    }
}
