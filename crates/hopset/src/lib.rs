//! Hopsets with bounded arboricity and a path-recovery mechanism — the
//! \[EN17a/EN17b\] machinery the paper's general-graph routing scheme runs on.
//!
//! A `(β, ε)`-**hopset** `H` for a graph `G'` is a set of weighted edges such
//! that every pair has a `(1+ε)`-approximate shortest path using at most `β`
//! hops in `G' ∪ H`. The paper's Appendix B applies hopsets to the *virtual
//! graph* `G'` on `Θ(√n)` sampled vertices whose edges encode `B`-bounded
//! distances in the underlying network `G` — crucially **without ever
//! materializing `G'`** (that alone would cost `Ω(√n)` memory at some
//! vertices): every Bellman–Ford iteration over `E'` is realized as a
//! `B`-bounded exploration in `G` itself.
//!
//! Modules:
//!
//! * [`virtual_graph`] — sampling `V'`, `B`-bounded multi-source explorations
//!   in `G` (the on-the-fly edges), and a test-only materialization.
//! * [`construction`] — the Thorup–Zwick-bunch hopset of \[EN17b\]: a sampled
//!   hierarchy on `V'` with bunch and pivot edges, giving size
//!   `O(m^{1+1/κ})`, out-degree (hence arboricity) `Õ(m^{1/ℓ})`, and the
//!   hop-reduction the routing scheme needs.
//! * [`bellman_ford`] — Lemma 2: low-memory `β`-iteration Bellman–Ford in
//!   `G' ∪ H`, with optional per-vertex *limits* (for the approximate-cluster
//!   explorations) and extension of virtual estimates to all of `G`.
//! * [`path_recovery`] — every hopset edge remembers the `G`-path realizing
//!   its weight; the recovery protocol pushes root-distances onto those
//!   paths so cluster trees become genuine trees of `G`.
//!
//! # Examples
//!
//! ```
//! use graphs::{generators, VertexId};
//! use hopset::virtual_graph::VirtualGraph;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
//! let g = generators::erdos_renyi_connected(100, 0.06, 1..=9, &mut rng);
//! let virt = VirtualGraph::sample(&g, 0.2, &mut rng);
//! assert!(virt.virtual_vertices().len() > 5);
//! ```

pub mod bellman_ford;
pub mod construction;
pub mod hopset;
pub mod path_recovery;
pub mod superclustering;
pub mod virtual_graph;

pub use construction::{
    build as build_hopset, build_observed as build_hopset_observed, HopsetParams,
};
pub use hopset::{Hopset, HopsetEdge};
pub use virtual_graph::VirtualGraph;
