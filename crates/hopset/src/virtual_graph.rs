//! The virtual graph `G' = (V', E')`, with edges realized on the fly.
//!
//! `V'` is a sampled subset of the network's vertices; `E'` notionally
//! contains an edge `{u', v'}` weighted by the shortest `B`-hop-bounded
//! `u'–v'` path in `G`. Storing `E'` would cost some vertices `Ω(|V'|)`
//! words, so — following the paper — edges are *never stored*: a Bellman–Ford
//! iteration over `E'` is implemented by seeding every virtual vertex's
//! current estimate into `G` and running `B` rounds of bounded exploration.

use congest::{CostLedger, MemoryMeter};
use graphs::{dist_add, Graph, VertexId, Weight, INFINITY};
use rand::Rng;

/// The sampled virtual vertex set plus the exploration machinery.
#[derive(Clone, Debug)]
pub struct VirtualGraph {
    verts: Vec<VertexId>,
    is_virtual: Vec<bool>,
    /// Hop bound `B` for realizing virtual edges.
    b_hops: usize,
}

/// Result of a bounded exploration: per host vertex, the best value heard and
/// the neighbor it was heard from (`None` at seeds / unreached vertices).
#[derive(Clone, Debug)]
pub struct Exploration {
    /// Best (smallest) value per host vertex; [`INFINITY`] if unreached.
    pub dist: Vec<Weight>,
    /// The neighbor whose message produced `dist` (exploration parent).
    pub parent: Vec<Option<VertexId>>,
    /// Which seed's wave reached each vertex (`None` if unreached).
    pub origin: Vec<Option<VertexId>>,
}

impl VirtualGraph {
    /// Sample each vertex of `g` into `V'` independently with probability `p`
    /// and set `B = 4·√n·ln n` (the paper's Claim-7 bound, capped at `n`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn sample<R: Rng>(g: &Graph, p: f64, rng: &mut R) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        let n = g.num_vertices();
        let verts: Vec<VertexId> = g.vertices().filter(|_| rng.gen_bool(p)).collect();
        Self::from_set(g, verts, default_b(n))
    }

    /// Build from an explicit vertex set and hop bound.
    ///
    /// # Panics
    ///
    /// Panics if any vertex is out of range or `b_hops == 0`.
    pub fn from_set(g: &Graph, verts: Vec<VertexId>, b_hops: usize) -> Self {
        assert!(b_hops > 0, "hop bound must be positive");
        let n = g.num_vertices();
        let mut is_virtual = vec![false; n];
        for &v in &verts {
            assert!(v.index() < n, "virtual vertex {v} out of range");
            is_virtual[v.index()] = true;
        }
        VirtualGraph {
            verts,
            is_virtual,
            b_hops,
        }
    }

    /// The virtual vertices `V'`.
    pub fn virtual_vertices(&self) -> &[VertexId] {
        &self.verts
    }

    /// Whether `v` is virtual.
    #[inline]
    pub fn is_virtual(&self, v: VertexId) -> bool {
        self.is_virtual[v.index()]
    }

    /// The hop bound `B`.
    pub fn b_hops(&self) -> usize {
        self.b_hops
    }

    /// One `B`-bounded multi-source exploration of `g`: `seeds` are
    /// `(vertex, initial value)` pairs; for `B` rounds every vertex forwards
    /// the smallest value it knows (plus the edge weight) to its neighbors.
    /// `limit(v, value)` gates forwarding *through* `v` (the paper's limited
    /// explorations); seeds always speak, and values are recorded at a vertex
    /// even when the limit stops it from forwarding.
    ///
    /// Charges `B` rounds to `ledger` and touches O(1) transient words per
    /// reached vertex on `memory`.
    pub fn bounded_exploration(
        &self,
        g: &Graph,
        seeds: &[(VertexId, Weight)],
        limit: &dyn Fn(VertexId, Weight) -> bool,
        ledger: &mut CostLedger,
        memory: &mut MemoryMeter,
    ) -> Exploration {
        let n = g.num_vertices();
        let mut dist = vec![INFINITY; n];
        let mut parent: Vec<Option<VertexId>> = vec![None; n];
        let mut origin: Vec<Option<VertexId>> = vec![None; n];
        let mut frontier: Vec<VertexId> = Vec::new();
        for &(s, val) in seeds {
            if val < dist[s.index()] {
                dist[s.index()] = val;
                origin[s.index()] = Some(s);
                if !frontier.contains(&s) {
                    frontier.push(s);
                }
            }
        }
        for _ in 0..self.b_hops {
            if frontier.is_empty() {
                break;
            }
            let mut next: Vec<VertexId> = Vec::new();
            let mut queued = vec![false; n];
            let snapshot = dist.clone();
            for &u in &frontier {
                let du = snapshot[u.index()];
                // Non-seed vertices only relay while under their limit.
                let is_seed = origin[u.index()] == Some(u);
                if !is_seed && !limit(u, du) {
                    continue;
                }
                for arc in g.neighbors(u) {
                    let nd = dist_add(du, arc.weight);
                    if nd < dist[arc.to.index()] {
                        memory.touch(arc.to, 2);
                        dist[arc.to.index()] = nd;
                        parent[arc.to.index()] = Some(u);
                        origin[arc.to.index()] = origin[u.index()];
                        if !queued[arc.to.index()] {
                            queued[arc.to.index()] = true;
                            next.push(arc.to);
                        }
                    }
                }
            }
            frontier = next;
        }
        ledger.charge_rounds(self.b_hops as u64);
        Exploration {
            dist,
            parent,
            origin,
        }
    }

    /// Materialize `E'` exactly (all-pairs `B`-bounded distances between
    /// virtual vertices). **Test and ablation use only** — this is precisely
    /// the `Ω(√n)`-memory object the paper avoids building.
    pub fn materialize(&self, g: &Graph) -> Vec<(VertexId, VertexId, Weight)> {
        let mut edges = Vec::new();
        for (i, &u) in self.verts.iter().enumerate() {
            let dist = graphs::shortest_paths::hop_bounded_distances(g, u, self.b_hops);
            for &v in &self.verts[i + 1..] {
                if dist[v.index()] != INFINITY {
                    edges.push((u, v, dist[v.index()]));
                }
            }
        }
        edges
    }
}

/// The paper's hop bound `B = 4·√n·ln n`, capped at `n` (a path can't be
/// longer than that).
pub fn default_b(n: usize) -> usize {
    if n <= 1 {
        return 1;
    }
    let b = 4.0 * (n as f64).sqrt() * (n as f64).ln();
    (b as usize).clamp(1, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::{generators, shortest_paths};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ledger_and_meter(n: usize) -> (CostLedger, MemoryMeter) {
        (CostLedger::new(), MemoryMeter::new(n))
    }

    #[test]
    fn default_b_is_capped() {
        assert_eq!(default_b(1), 1);
        assert_eq!(default_b(100), 100);
        assert!(default_b(100_000) < 100_000);
    }

    #[test]
    fn exploration_from_single_seed_matches_bounded_bf() {
        let mut rng = ChaCha8Rng::seed_from_u64(51);
        let g = generators::erdos_renyi_connected(60, 0.08, 1..=9, &mut rng);
        let virt = VirtualGraph::from_set(&g, vec![VertexId(0)], 5);
        let (mut led, mut mem) = ledger_and_meter(60);
        let out =
            virt.bounded_exploration(&g, &[(VertexId(0), 0)], &|_, _| true, &mut led, &mut mem);
        let want = shortest_paths::hop_bounded_distances(&g, VertexId(0), 5);
        assert_eq!(out.dist, want);
        assert_eq!(led.rounds(), 5);
    }

    #[test]
    fn exploration_takes_min_over_seeds() {
        let mut rng = ChaCha8Rng::seed_from_u64(52);
        let g = generators::path(10, 1..=1, &mut rng);
        let virt = VirtualGraph::from_set(&g, vec![VertexId(0), VertexId(9)], 10);
        let (mut led, mut mem) = ledger_and_meter(10);
        let out = virt.bounded_exploration(
            &g,
            &[(VertexId(0), 0), (VertexId(9), 0)],
            &|_, _| true,
            &mut led,
            &mut mem,
        );
        for v in 0..10u32 {
            let want = (v as u64).min(9 - v as u64);
            assert_eq!(out.dist[v as usize], want, "vertex {v}");
        }
        assert_eq!(out.origin[1], Some(VertexId(0)));
        assert_eq!(out.origin[8], Some(VertexId(9)));
    }

    #[test]
    fn seeds_can_carry_initial_values() {
        let mut rng = ChaCha8Rng::seed_from_u64(53);
        let g = generators::path(5, 1..=1, &mut rng);
        let virt = VirtualGraph::from_set(&g, vec![VertexId(0), VertexId(4)], 5);
        let (mut led, mut mem) = ledger_and_meter(5);
        // Seed 0 starts at 100, seed 4 at 0: everything should hear seed 4.
        let out = virt.bounded_exploration(
            &g,
            &[(VertexId(0), 100), (VertexId(4), 0)],
            &|_, _| true,
            &mut led,
            &mut mem,
        );
        assert_eq!(out.dist, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn limit_blocks_relay_but_not_receipt() {
        let mut rng = ChaCha8Rng::seed_from_u64(54);
        let g = generators::path(5, 1..=1, &mut rng);
        let virt = VirtualGraph::from_set(&g, vec![VertexId(0)], 5);
        let (mut led, mut mem) = ledger_and_meter(5);
        // Vertex 2 refuses to forward: the wave stops there, but 2 itself
        // still records its distance.
        let out = virt.bounded_exploration(
            &g,
            &[(VertexId(0), 0)],
            &|v, _| v != VertexId(2),
            &mut led,
            &mut mem,
        );
        assert_eq!(out.dist[2], 2);
        assert_eq!(out.dist[3], INFINITY);
    }

    #[test]
    fn hop_bound_truncates() {
        let mut rng = ChaCha8Rng::seed_from_u64(55);
        let g = generators::path(10, 1..=1, &mut rng);
        let virt = VirtualGraph::from_set(&g, vec![VertexId(0)], 3);
        let (mut led, mut mem) = ledger_and_meter(10);
        let out =
            virt.bounded_exploration(&g, &[(VertexId(0), 0)], &|_, _| true, &mut led, &mut mem);
        assert_eq!(out.dist[3], 3);
        assert_eq!(out.dist[4], INFINITY);
    }

    #[test]
    fn materialized_edges_are_symmetric_bounded_distances() {
        let mut rng = ChaCha8Rng::seed_from_u64(56);
        let g = generators::erdos_renyi_connected(40, 0.1, 1..=9, &mut rng);
        let virt = VirtualGraph::sample(&g, 0.3, &mut rng);
        let edges = virt.materialize(&g);
        for &(u, v, w) in &edges {
            assert!(virt.is_virtual(u) && virt.is_virtual(v));
            let duv = shortest_paths::hop_bounded_distances(&g, u, virt.b_hops())[v.index()];
            assert_eq!(w, duv);
            // Bounded distances dominate true distances.
            assert!(w >= shortest_paths::dijkstra(&g, u)[v.index()]);
        }
    }

    #[test]
    fn sampling_probability_shapes_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(57);
        let g = generators::erdos_renyi_connected(400, 0.02, 1..=5, &mut rng);
        let virt = VirtualGraph::sample(&g, 0.25, &mut rng);
        let m = virt.virtual_vertices().len() as f64;
        assert!(m > 100.0 * 0.5 && m < 100.0 * 2.0, "|V'| = {m}");
    }

    #[test]
    fn exploration_parents_chain_back_to_origin() {
        let mut rng = ChaCha8Rng::seed_from_u64(58);
        let g = generators::erdos_renyi_connected(50, 0.1, 1..=9, &mut rng);
        let virt = VirtualGraph::from_set(&g, vec![VertexId(7)], 50);
        let (mut led, mut mem) = ledger_and_meter(50);
        let out =
            virt.bounded_exploration(&g, &[(VertexId(7), 0)], &|_, _| true, &mut led, &mut mem);
        for v in g.vertices() {
            if out.dist[v.index()] == INFINITY || v == VertexId(7) {
                continue;
            }
            let mut cur = v;
            let mut hops = 0;
            while let Some(p) = out.parent[cur.index()] {
                // Parent improves distance by exactly the edge weight.
                let w = g.edge_weight(p, cur).unwrap();
                assert_eq!(out.dist[cur.index()], out.dist[p.index()] + w);
                cur = p;
                hops += 1;
                assert!(hops <= 50);
            }
            assert_eq!(cur, VertexId(7));
        }
    }
}
