//! Lemma 2: low-memory Bellman–Ford over `G'' = E' ∪ H`.
//!
//! One iteration has two halves:
//!
//! 1. **`E'`-step** — every virtual vertex holding a finite estimate (and
//!    passing its limit) seeds a `B`-bounded exploration of `G`; a virtual
//!    vertex hearing a smaller value adopts it. This realizes all `E'` edges
//!    without storing any.
//! 2. **`H`-step** — every virtual vertex passing its limit broadcasts its
//!    estimate together with its `O(α)` *outgoing* hopset records; both
//!    endpoints of every announced record relax. No vertex ever stores
//!    incoming hopset edges, so memory stays `O(α + log n)`.
//!
//! Iterations run until the estimates stabilize or the `β` budget is
//! exhausted; the number actually used is reported (the empirical hop bound
//! the benches compare against the paper's `β` formula).
//!
//! The *limits* implement Appendix B's limited explorations: a vertex only
//! propagates while its current estimate is below its clip threshold, which
//! is what keeps per-vertex congestion at `Õ(n^{1/k})` across all clusters.

use congest::{CostLedger, MemoryMeter};
use graphs::{dist_add, Graph, VertexId, Weight, INFINITY};

use crate::hopset::Hopset;
use crate::virtual_graph::{Exploration, VirtualGraph};

/// How a virtual vertex obtained its final estimate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Via {
    /// It was a root (seed) of the computation.
    Seed,
    /// Heard through a `B`-bounded exploration (an `E'` edge).
    Bounded,
    /// Relaxed along a hopset record; `owner`/`index` locate the record in
    /// the [`Hopset`], `reversed` says the message flowed `to → owner`.
    Hopset {
        /// The vertex storing the record.
        owner: VertexId,
        /// Position within `owner`'s out-edge list.
        index: usize,
        /// Whether the relaxation ran against the stored direction.
        reversed: bool,
    },
}

/// Result of a limited Bellman–Ford run.
#[derive(Clone, Debug)]
pub struct BfOutput {
    /// Final estimates (finite only at reached virtual vertices and seeds).
    pub est: Vec<Weight>,
    /// Provenance of each virtual vertex's estimate.
    pub via: Vec<Via>,
    /// Which *root* each estimate descends from (`None` if unreached) — the
    /// pivot identity when the roots are a hierarchy set `A_i`.
    pub origin: Vec<Option<VertexId>>,
    /// Iterations actually executed (the empirical `β`).
    pub beta_used: usize,
    /// The last `E'` exploration (host-level distances and parents), usable
    /// as the final "extend to all of `G`" pass.
    pub last_exploration: Exploration,
}

impl BfOutput {
    /// Root provenance for every *host* vertex: the origin of the seed whose
    /// wave won the final exploration (the host's approximate pivot).
    pub fn host_origin(&self, v: VertexId) -> Option<VertexId> {
        self.last_exploration.origin[v.index()].and_then(|seed| self.origin[seed.index()])
    }
}

/// The Bellman–Ford driver, borrowing the graph, virtual set and hopset.
#[derive(Clone, Copy, Debug)]
pub struct LimitedBf<'a> {
    /// Host graph.
    pub g: &'a Graph,
    /// Virtual vertex set with its hop bound `B`.
    pub virt: &'a VirtualGraph,
    /// Hopset over the virtual vertices.
    pub hopset: &'a Hopset,
}

impl<'a> LimitedBf<'a> {
    /// Run up to `max_iters` iterations from `roots` (`(vertex, initial
    /// estimate)` pairs; roots need not be virtual — a non-virtual root
    /// participates through the explorations only).
    ///
    /// `limit(v, est)` gates propagation *out of* `v` — return `true` to let
    /// `v` keep relaying. `d` prices the per-iteration broadcast.
    ///
    /// # Panics
    ///
    /// Panics if `max_iters == 0`.
    pub fn run(
        &self,
        roots: &[(VertexId, Weight)],
        limit: &dyn Fn(VertexId, Weight) -> bool,
        max_iters: usize,
        d: u64,
        ledger: &mut CostLedger,
        memory: &mut MemoryMeter,
    ) -> BfOutput {
        assert!(max_iters > 0, "need at least one iteration");
        let n = self.g.num_vertices();
        let mut est = vec![INFINITY; n];
        let mut via = vec![Via::Seed; n];
        let mut origin: Vec<Option<VertexId>> = vec![None; n];
        for &(r, v0) in roots {
            if v0 < est[r.index()] {
                est[r.index()] = v0;
                origin[r.index()] = Some(r);
            }
        }

        let mut beta_used = 0;
        let mut last_exploration = Exploration {
            dist: vec![INFINITY; n],
            parent: vec![None; n],
            origin: vec![None; n],
        };
        for _ in 0..max_iters {
            beta_used += 1;
            let mut changed = false;

            // ---- E'-step: one B-bounded exploration seeded by all finite,
            // unclipped estimates (roots always speak).
            let is_root = |v: VertexId| roots.iter().any(|&(r, _)| r == v);
            let seeds: Vec<(VertexId, Weight)> = self
                .g
                .vertices()
                .filter(|&v| est[v.index()] != INFINITY)
                .filter(|&v| is_root(v) || limit(v, est[v.index()]))
                .map(|v| (v, est[v.index()]))
                .collect();
            let explo = self
                .virt
                .bounded_exploration(self.g, &seeds, limit, ledger, memory);
            let origin_snapshot = origin.clone();
            for &x in self.virt.virtual_vertices() {
                let heard = explo.dist[x.index()];
                if heard < est[x.index()] {
                    est[x.index()] = heard;
                    via[x.index()] = Via::Bounded;
                    origin[x.index()] =
                        explo.origin[x.index()].and_then(|seed| origin_snapshot[seed.index()]);
                    changed = true;
                }
            }
            last_exploration = explo;

            // ---- H-step: broadcast estimates + out-records; relax both ways.
            let mut msgs = 0u64;
            let snapshot = est.clone();
            let origin_snapshot = origin.clone();
            for &u in self.virt.virtual_vertices() {
                if snapshot[u.index()] == INFINITY || !limit(u, snapshot[u.index()]) {
                    continue;
                }
                msgs += 1 + self.hopset.out_edges(u).len() as u64;
                for (j, e) in self.hopset.out_edges(u).iter().enumerate() {
                    memory.touch(e.to, 2);
                    // Forward: u's estimate reaches e.to.
                    let fwd = dist_add(snapshot[u.index()], e.weight);
                    if fwd < est[e.to.index()] {
                        est[e.to.index()] = fwd;
                        via[e.to.index()] = Via::Hopset {
                            owner: u,
                            index: j,
                            reversed: false,
                        };
                        origin[e.to.index()] = origin_snapshot[u.index()];
                        changed = true;
                    }
                    // Reverse: e.to's estimate reaches u, provided e.to may
                    // speak (it hears its own edge in u's announcement).
                    if snapshot[e.to.index()] != INFINITY && limit(e.to, snapshot[e.to.index()]) {
                        let rev = dist_add(snapshot[e.to.index()], e.weight);
                        if rev < est[u.index()] {
                            est[u.index()] = rev;
                            via[u.index()] = Via::Hopset {
                                owner: u,
                                index: j,
                                reversed: true,
                            };
                            origin[u.index()] = origin_snapshot[e.to.index()];
                            changed = true;
                        }
                    }
                }
            }
            ledger.charge_broadcast(msgs, d);

            if !changed {
                break;
            }
        }

        BfOutput {
            est,
            via,
            origin,
            beta_used,
            last_exploration,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construction::{build, HopsetParams};
    use graphs::{generators, shortest_paths};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    struct Fixture {
        g: Graph,
        virt: VirtualGraph,
        hopset: Hopset,
    }

    fn fixture(n: usize, p: f64, seed: u64) -> Fixture {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 3.0 / n as f64, 1..=9, &mut rng);
        let virt = VirtualGraph::sample(&g, p, &mut rng);
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(n);
        let out = build(
            &g,
            &virt,
            HopsetParams::default(),
            8,
            &mut led,
            &mut mem,
            &mut rng,
        );
        Fixture {
            g,
            virt,
            hopset: out.hopset,
        }
    }

    #[test]
    fn converges_to_exact_distances_without_limits() {
        let f = fixture(150, 0.25, 71);
        let bf = LimitedBf {
            g: &f.g,
            virt: &f.virt,
            hopset: &f.hopset,
        };
        let root = f.virt.virtual_vertices()[0];
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(f.g.num_vertices());
        let out = bf.run(&[(root, 0)], &|_, _| true, 200, 8, &mut led, &mut mem);
        let exact = shortest_paths::dijkstra(&f.g, root);
        for &x in f.virt.virtual_vertices() {
            // Estimates never undershoot, and with full convergence and a
            // B that covers the graph they match exactly.
            assert!(out.est[x.index()] >= exact[x.index()]);
            assert_eq!(out.est[x.index()], exact[x.index()], "vertex {x}");
        }
    }

    #[test]
    fn hopset_cuts_iterations_versus_plain_exploration() {
        // On a long path with sparse virtual vertices, plain E'-steps need
        // many iterations; hopset edges collapse that.
        let mut rng = ChaCha8Rng::seed_from_u64(72);
        let g = generators::path(400, 1..=1, &mut rng);
        let verts: Vec<VertexId> = (0..400).step_by(10).map(|i| VertexId(i as u32)).collect();
        let virt = VirtualGraph::from_set(&g, verts, 15);
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(400);
        let built = build(
            &g,
            &virt,
            HopsetParams { levels: 2 },
            5,
            &mut led,
            &mut mem,
            &mut rng,
        );
        let empty = Hopset::new(400);
        let root = VertexId(0);
        let with = LimitedBf {
            g: &g,
            virt: &virt,
            hopset: &built.hopset,
        }
        .run(&[(root, 0)], &|_, _| true, 500, 5, &mut led, &mut mem);
        let without = LimitedBf {
            g: &g,
            virt: &virt,
            hopset: &empty,
        }
        .run(&[(root, 0)], &|_, _| true, 500, 5, &mut led, &mut mem);
        assert!(
            with.beta_used < without.beta_used,
            "hopset β {} should beat plain β {}",
            with.beta_used,
            without.beta_used
        );
        // Both converge to the same (exact) distances on a path.
        assert_eq!(with.est, without.est);
    }

    #[test]
    fn estimates_never_undershoot_true_distance() {
        let f = fixture(120, 0.3, 73);
        let bf = LimitedBf {
            g: &f.g,
            virt: &f.virt,
            hopset: &f.hopset,
        };
        let root = f.virt.virtual_vertices()[1];
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(f.g.num_vertices());
        // A tight limit clips propagation — estimates stay safe (≥ d).
        let exact = shortest_paths::dijkstra(&f.g, root);
        let out = bf.run(&[(root, 0)], &|_, est| est < 30, 50, 8, &mut led, &mut mem);
        for v in f.g.vertices() {
            assert!(out.est[v.index()] >= exact[v.index()]);
        }
    }

    #[test]
    fn limits_confine_the_wave() {
        let mut rng = ChaCha8Rng::seed_from_u64(74);
        let g = generators::path(50, 1..=1, &mut rng);
        let verts: Vec<VertexId> = (0..50).map(|i| VertexId(i as u32)).collect();
        let virt = VirtualGraph::from_set(&g, verts, 50);
        let hopset = Hopset::new(50);
        let bf = LimitedBf {
            g: &g,
            virt: &virt,
            hopset: &hopset,
        };
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(50);
        let out = bf.run(
            &[(VertexId(0), 0)],
            &|_, est| est < 10,
            100,
            5,
            &mut led,
            &mut mem,
        );
        // Vertices at distance ≤ 10 hear the wave; vertex 10 records its
        // value but is clipped (est < 10 fails), so nothing reaches 11.
        assert_eq!(out.est[9], 9);
        assert_eq!(out.est[10], 10);
        assert_eq!(out.est[11], INFINITY);
    }

    #[test]
    fn via_records_provenance() {
        let f = fixture(100, 0.3, 75);
        let bf = LimitedBf {
            g: &f.g,
            virt: &f.virt,
            hopset: &f.hopset,
        };
        let root = f.virt.virtual_vertices()[0];
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(f.g.num_vertices());
        let out = bf.run(&[(root, 0)], &|_, _| true, 200, 8, &mut led, &mut mem);
        assert_eq!(out.via[root.index()], Via::Seed);
        for &x in f.virt.virtual_vertices() {
            if x == root || out.est[x.index()] == INFINITY {
                continue;
            }
            match out.via[x.index()] {
                Via::Seed => panic!("non-root {x} marked as seed"),
                Via::Bounded => {}
                Via::Hopset {
                    owner,
                    index,
                    reversed,
                } => {
                    let e = f.hopset.out_edges(owner)[index];
                    // The recorded edge must connect x consistently.
                    if reversed {
                        assert_eq!(owner, x);
                    } else {
                        assert_eq!(e.to, x);
                    }
                }
            }
        }
    }

    #[test]
    fn beta_budget_is_respected() {
        let f = fixture(200, 0.2, 76);
        let bf = LimitedBf {
            g: &f.g,
            virt: &f.virt,
            hopset: &f.hopset,
        };
        let root = f.virt.virtual_vertices()[0];
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(f.g.num_vertices());
        let out = bf.run(&[(root, 0)], &|_, _| true, 3, 8, &mut led, &mut mem);
        assert!(out.beta_used <= 3);
    }

    #[test]
    fn non_virtual_roots_seed_explorations() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let g = generators::path(20, 1..=1, &mut rng);
        let virt = VirtualGraph::from_set(&g, vec![VertexId(10)], 20);
        let hopset = Hopset::new(20);
        let bf = LimitedBf {
            g: &g,
            virt: &virt,
            hopset: &hopset,
        };
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(20);
        let out = bf.run(&[(VertexId(0), 0)], &|_, _| true, 10, 5, &mut led, &mut mem);
        assert_eq!(out.est[10], 10);
    }
}
