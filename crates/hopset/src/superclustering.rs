//! The superclustering-and-interconnection hopset construction — the
//! \[EN16a\]/\[EN17a\] family behind the paper's Theorem 1, implemented as an
//! alternative to the Thorup–Zwick-bunch construction in
//! [`crate::construction`].
//!
//! The construction works scale by scale: for each distance scale
//! `δ = 2^s`, it maintains a partition of the virtual vertices into
//! clusters (initially singletons) and runs `ℓ` levels; in each level,
//! cluster centers are *sampled*, unsampled clusters within reach `r_i` of a
//! sampled center **merge into its supercluster** (adding one hopset edge
//! center→center), and unsampled clusters with no sampled center nearby
//! **interconnect** with every cluster center within `r_i` (adding those
//! edges). Radii grow geometrically so a scale-`δ` pair is covered with few
//! hops and `(1+ε)` slack. Edge weights are exact `G`-distances with
//! realizing paths, as in the bunch construction.
//!
//! Differences from the paper's parameterization are deliberate and
//! documented: sampling is uniform per level (probability `m^{-1/(ℓ+1)}`)
//! rather than the doubly-exponential schedule; this preserves the size /
//! out-degree / hop-reduction *shape* the ablation compares while keeping
//! the implementation auditable. Both constructions plug into the same
//! [`crate::bellman_ford::LimitedBf`] and path-recovery machinery.

use std::collections::BinaryHeap;

use congest::{CostLedger, MemoryMeter};
use graphs::{shortest_paths, Graph, VertexId, Weight, INFINITY};
use rand::Rng;

use crate::construction::{BuildStats, HopsetOutput, HopsetParams};
use crate::hopset::Hopset;
use crate::virtual_graph::VirtualGraph;

/// Build a superclustering-and-interconnection hopset over `virt`.
///
/// Parameters, accounting, and output mirror [`crate::construction::build`].
///
/// # Panics
///
/// Panics if `virt` has no virtual vertices or `eps` is not in `(0, 1)`.
#[allow(clippy::too_many_arguments)]
pub fn build_sc<R: Rng>(
    g: &Graph,
    virt: &VirtualGraph,
    params: HopsetParams,
    eps: f64,
    d: u64,
    ledger: &mut CostLedger,
    memory: &mut MemoryMeter,
    rng: &mut R,
) -> HopsetOutput {
    let verts = virt.virtual_vertices();
    assert!(!verts.is_empty(), "virtual graph has no vertices");
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
    let n = g.num_vertices();
    let m = verts.len();
    let levels = params.levels.max(1);
    let p = (m as f64)
        .powf(-1.0 / (levels as f64 + 1.0))
        .clamp(0.0, 1.0);

    let mut hopset = Hopset::new(n);
    let mut is_virtual_center = vec![false; n];
    for &v in verts {
        is_virtual_center[v.index()] = true;
    }

    // Distance scales: powers of two up to the weighted diameter of the
    // virtual set (measured from an arbitrary virtual vertex, doubled).
    let probe = shortest_paths::dijkstra(g, verts[0]);
    let reach = verts
        .iter()
        .map(|v| probe[v.index()])
        .filter(|&x| x != INFINITY)
        .max()
        .unwrap_or(1);
    let max_scale = 2 * reach.max(1);
    let mut level_sizes = vec![m];

    let mut scale: Weight = 1;
    while scale <= max_scale {
        run_scale(
            g,
            verts,
            scale,
            levels,
            p,
            eps,
            &mut hopset,
            ledger,
            memory,
            d,
            rng,
        );
        level_sizes.push(hopset.num_edges());
        scale = scale.saturating_mul(2);
        if scale == 0 {
            break;
        }
    }

    for &v in verts {
        memory.set(v, hopset.memory_words(v) + 2 * (levels + 1));
    }
    let stats = BuildStats {
        level_sizes,
        edges: hopset.num_edges(),
        arboricity: hopset.max_out_degree(),
    };
    HopsetOutput { hopset, stats }
}

/// One distance scale: supercluster and interconnect until one level past
/// the sampling cascade.
#[allow(clippy::too_many_arguments)]
fn run_scale<R: Rng>(
    g: &Graph,
    verts: &[VertexId],
    scale: Weight,
    levels: usize,
    p: f64,
    eps: f64,
    hopset: &mut Hopset,
    ledger: &mut CostLedger,
    memory: &mut MemoryMeter,
    d: u64,
    rng: &mut R,
) {
    // Active cluster centers (clusters are identified by their centers).
    let mut centers: Vec<VertexId> = verts.to_vec();
    // Merge/interconnect reach doubles per level up to the scale itself:
    // r_i = δ / 2^{levels − i}. Early levels merge nearby centers (thinning
    // the population by ≈ the sampling rate each time), so the final
    // full-scale interconnect sees few survivors — that is what keeps the
    // edge count and out-degree small. The ε slack enters through the
    // caller's Bellman–Ford limits, not the radii.
    let _ = eps;
    for i in 0..=levels {
        if centers.len() <= 1 {
            break;
        }
        let r_i = (scale >> (levels - i)).max(1);
        let last = i == levels;
        // Sample surviving centers; the last level samples nobody and
        // interconnects everything within the full scale.
        let sampled: Vec<VertexId> = if last {
            Vec::new()
        } else {
            centers
                .iter()
                .copied()
                .filter(|_| rng.gen_bool(p))
                .collect()
        };
        ledger.charge_broadcast(centers.len() as u64, d);
        ledger.charge_rounds(r_i.min(g.num_vertices() as u64));

        let mut next_centers: Vec<VertexId> = sampled.clone();
        if sampled.is_empty() && !last {
            // Nobody sampled: skip to interconnection next level.
            continue;
        }
        // Nearest sampled center for merging.
        let (near_dist, near_owner) = if sampled.is_empty() {
            (
                vec![INFINITY; g.num_vertices()],
                vec![None; g.num_vertices()],
            )
        } else {
            shortest_paths::multi_source_dijkstra(g, &sampled)
        };

        let active: Vec<bool> = {
            let mut f = vec![false; g.num_vertices()];
            for &c in &centers {
                f[c.index()] = true;
            }
            f
        };
        let reach = if last { scale } else { r_i };
        for &c in &centers {
            if sampled.contains(&c) {
                continue;
            }
            if !last && near_dist[c.index()] <= reach {
                // Supercluster: merge into the nearest sampled center.
                let owner = near_owner[c.index()].expect("finite distance");
                let (dist_c, parents_c) = shortest_paths::dijkstra_with_parents(g, c);
                let path = unwind(&parents_c, c, owner);
                memory.touch(c, 2);
                hopset.add_edge(c, owner, dist_c[owner.index()], path);
            } else {
                // Interconnect with every active center within reach.
                let found = truncated_centers(g, c, reach, &active);
                let (dist_c, parents_c) = if found.is_empty() {
                    (Vec::new(), Vec::new())
                } else {
                    shortest_paths::dijkstra_with_parents(g, c)
                };
                for other in found {
                    if other <= c {
                        continue; // orient small→large, once
                    }
                    let path = unwind(&parents_c, c, other);
                    memory.touch(c, 2);
                    hopset.add_edge(c, other, dist_c[other.index()], path);
                }
                next_centers.push(c);
            }
        }
        ledger.charge_broadcast(next_centers.len() as u64, d);
        centers = next_centers;
    }
}

/// Active centers within `reach` of `c` (truncated Dijkstra).
fn truncated_centers(g: &Graph, c: VertexId, reach: Weight, active: &[bool]) -> Vec<VertexId> {
    use std::cmp::Reverse;
    let mut dist = std::collections::HashMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(c, 0u64);
    heap.push(Reverse((0u64, c)));
    let mut found = Vec::new();
    while let Some(Reverse((dd, u))) = heap.pop() {
        if dist.get(&u).copied() != Some(dd) || dd > reach {
            continue;
        }
        if u != c && active[u.index()] {
            found.push(u);
        }
        for arc in g.neighbors(u) {
            let nd = dd.saturating_add(arc.weight);
            if nd <= reach && dist.get(&arc.to).is_none_or(|&old| nd < old) {
                dist.insert(arc.to, nd);
                heap.push(Reverse((nd, arc.to)));
            }
        }
    }
    found
}

/// Path from `src` to `dst` along Dijkstra parents rooted at `src`.
fn unwind(parents: &[Option<VertexId>], src: VertexId, dst: VertexId) -> Vec<VertexId> {
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = parents[cur.index()].expect("reachable");
        path.push(cur);
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bellman_ford::LimitedBf;
    use crate::construction::build as build_bunch;
    use graphs::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn fixture(n: usize, seed: u64) -> (Graph, VirtualGraph, ChaCha8Rng) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 3.0 / n as f64, 1..=9, &mut rng);
        let virt = VirtualGraph::sample(&g, 0.25, &mut rng);
        (g, virt, rng)
    }

    fn build(g: &Graph, virt: &VirtualGraph, rng: &mut ChaCha8Rng) -> HopsetOutput {
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(g.num_vertices());
        build_sc(
            g,
            virt,
            HopsetParams::default(),
            0.25,
            8,
            &mut led,
            &mut mem,
            rng,
        )
    }

    #[test]
    fn edges_are_exact_distances_with_valid_paths() {
        let (g, virt, mut rng) = fixture(120, 901);
        let out = build(&g, &virt, &mut rng);
        assert!(out.hopset.num_edges() > 0);
        for u in g.vertices() {
            if out.hopset.out_edges(u).is_empty() {
                continue;
            }
            let dist_u = shortest_paths::dijkstra(&g, u);
            for (j, e) in out.hopset.out_edges(u).iter().enumerate() {
                assert_eq!(e.weight, dist_u[e.to.index()]);
                let path = out.hopset.path(u, j);
                let mut total = 0;
                for pair in path.windows(2) {
                    total += g.edge_weight(pair[0], pair[1]).expect("path edge");
                }
                assert_eq!(total, e.weight);
            }
        }
    }

    #[test]
    fn endpoints_are_virtual() {
        let (g, virt, mut rng) = fixture(100, 902);
        let out = build(&g, &virt, &mut rng);
        for (u, v, _) in out.hopset.edges() {
            assert!(virt.is_virtual(u) && virt.is_virtual(v));
        }
    }

    #[test]
    fn bellman_ford_converges_exactly_with_sc_hopset() {
        let (g, virt, mut rng) = fixture(150, 903);
        let out = build(&g, &virt, &mut rng);
        let root = virt.virtual_vertices()[0];
        let bf = LimitedBf {
            g: &g,
            virt: &virt,
            hopset: &out.hopset,
        };
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(g.num_vertices());
        let res = bf.run(&[(root, 0)], &|_, _| true, 400, 8, &mut led, &mut mem);
        let exact = shortest_paths::dijkstra(&g, root);
        for &x in virt.virtual_vertices() {
            assert_eq!(res.est[x.index()], exact[x.index()]);
        }
    }

    #[test]
    fn sc_reduces_hops_on_long_paths() {
        let mut rng = ChaCha8Rng::seed_from_u64(904);
        let g = generators::path(500, 1..=3, &mut rng);
        let verts: Vec<VertexId> = (0..500).step_by(11).map(|i| VertexId(i as u32)).collect();
        let virt = VirtualGraph::from_set(&g, verts, 40);
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(500);
        let sc = build_sc(
            &g,
            &virt,
            HopsetParams { levels: 2 },
            0.25,
            5,
            &mut led,
            &mut mem,
            &mut rng,
        );
        let empty = Hopset::new(500);
        let root = VertexId(0);
        let run = |h: &Hopset| {
            let mut led = CostLedger::new();
            let mut mem = MemoryMeter::new(500);
            LimitedBf {
                g: &g,
                virt: &virt,
                hopset: h,
            }
            .run(&[(root, 0)], &|_, _| true, 2000, 5, &mut led, &mut mem)
            .beta_used
        };
        assert!(
            run(&sc.hopset) < run(&empty),
            "SC hopset should reduce Bellman-Ford iterations"
        );
    }

    #[test]
    fn sc_and_bunch_tradeoff_is_reported() {
        // The two families are comparable through the same stats type.
        let (g, virt, mut rng) = fixture(200, 905);
        let sc = build(&g, &virt, &mut rng);
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(g.num_vertices());
        let bunch = build_bunch(
            &g,
            &virt,
            HopsetParams::default(),
            8,
            &mut led,
            &mut mem,
            &mut rng,
        );
        assert!(sc.stats.edges > 0 && bunch.stats.edges > 0);
        assert!(sc.stats.arboricity >= 1 && bunch.stats.arboricity >= 1);
    }

    #[test]
    fn singleton_virtual_set_yields_empty_hopset() {
        let mut rng = ChaCha8Rng::seed_from_u64(906);
        let g = generators::path(10, 1..=1, &mut rng);
        let virt = VirtualGraph::from_set(&g, vec![VertexId(4)], 10);
        let out = build(&g, &virt, &mut rng);
        assert_eq!(out.hopset.num_edges(), 0);
    }
}
